"""The host-side 9P file share.

Unikraft's 9PFS talks the 9P protocol to a share exported by the host
(QEMU virtfs).  The share is *host* state: it survives unikernel
reboots, full or component-level — which is exactly why Redis's AOF
file persists across the full-reboot recovery of Fig. 8.

The share is a small in-memory file tree with POSIX-ish semantics
(paths, directories, byte contents).  The 9PFS component layers fids,
inodes and the 9P RPC cost model on top.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ShareError(Exception):
    """Base class for host-share errors (mapped to 9P Rerror)."""


class NoSuchFile(ShareError):
    def __init__(self, path: str) -> None:
        super().__init__(f"no such file or directory: {path!r}")
        self.path = path


class NotADirectory(ShareError):
    def __init__(self, path: str) -> None:
        super().__init__(f"not a directory: {path!r}")
        self.path = path


class IsADirectory(ShareError):
    def __init__(self, path: str) -> None:
        super().__init__(f"is a directory: {path!r}")
        self.path = path


class FileExists(ShareError):
    def __init__(self, path: str) -> None:
        super().__init__(f"file exists: {path!r}")
        self.path = path


def normalize(path: str) -> str:
    """Canonical absolute path ('' and '/' become '/')."""
    if not path or path == "/":
        return "/"
    norm = posixpath.normpath("/" + path.lstrip("/"))
    return norm


@dataclass(frozen=True)
class ShareStat:
    """stat() result for a share entry.

    Frozen, and declared an immutable payload: one is logged per
    ``open()`` as a return-value record, and the marker lets the call
    log store it by reference instead of deep-copying (every field is
    an immutable scalar, and consumers only read it).
    """

    path: str
    is_dir: bool
    size: int
    version: int

    __immutable_payload__ = True


@dataclass
class _FileEntry:
    data: bytearray = field(default_factory=bytearray)
    version: int = 0


class HostShare:
    """An in-memory file tree exported to the unikernel over 9P."""

    def __init__(self, name: str = "share") -> None:
        self.name = name
        self._files: Dict[str, _FileEntry] = {}
        self._dirs: Dict[str, int] = {"/": 0}  # path -> version
        #: counters the experiments read (9P traffic accounting)
        self.rpc_count = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # --- queries -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = normalize(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def stat(self, path: str) -> ShareStat:
        self.rpc_count += 1
        path = normalize(path)
        if path in self._dirs:
            return ShareStat(path=path, is_dir=True, size=0,
                             version=self._dirs[path])
        entry = self._files.get(path)
        if entry is None:
            raise NoSuchFile(path)
        return ShareStat(path=path, is_dir=False, size=len(entry.data),
                         version=entry.version)

    def listdir(self, path: str) -> List[str]:
        self.rpc_count += 1
        path = normalize(path)
        if path in self._files:
            raise NotADirectory(path)
        if path not in self._dirs:
            raise NoSuchFile(path)
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate == path:
                continue
            if candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    # --- mutation -------------------------------------------------------------

    def _require_parent(self, path: str) -> None:
        parent = posixpath.dirname(path) or "/"
        if parent not in self._dirs:
            if parent in self._files:
                raise NotADirectory(parent)
            raise NoSuchFile(parent)

    def mkdir(self, path: str) -> None:
        self.rpc_count += 1
        path = normalize(path)
        if self.exists(path):
            raise FileExists(path)
        self._require_parent(path)
        self._dirs[path] = 0

    def makedirs(self, path: str) -> None:
        """Create a directory and all missing ancestors (test helper)."""
        path = normalize(path)
        parts = [p for p in path.split("/") if p]
        current = "/"
        for part in parts:
            current = posixpath.join(current, part)
            if current not in self._dirs:
                if current in self._files:
                    raise NotADirectory(current)
                self._dirs[current] = 0

    def create(self, path: str, data: bytes = b"") -> None:
        self.rpc_count += 1
        path = normalize(path)
        if self.exists(path):
            raise FileExists(path)
        self._require_parent(path)
        self._files[path] = _FileEntry(bytearray(data))
        self.bytes_written += len(data)

    def read(self, path: str, offset: int = 0,
             count: Optional[int] = None) -> bytes:
        self.rpc_count += 1
        path = normalize(path)
        if path in self._dirs:
            raise IsADirectory(path)
        entry = self._files.get(path)
        if entry is None:
            raise NoSuchFile(path)
        if count is None:
            chunk = bytes(entry.data[offset:])
        else:
            chunk = bytes(entry.data[offset:offset + count])
        self.bytes_read += len(chunk)
        return chunk

    def write(self, path: str, offset: int, data: bytes) -> int:
        self.rpc_count += 1
        path = normalize(path)
        if path in self._dirs:
            raise IsADirectory(path)
        entry = self._files.get(path)
        if entry is None:
            raise NoSuchFile(path)
        end = offset + len(data)
        if len(entry.data) < end:
            entry.data.extend(b"\x00" * (end - len(entry.data)))
        entry.data[offset:end] = data
        entry.version += 1
        self.bytes_written += len(data)
        return len(data)

    def truncate(self, path: str, length: int = 0) -> None:
        self.rpc_count += 1
        path = normalize(path)
        entry = self._files.get(path)
        if entry is None:
            raise NoSuchFile(path)
        del entry.data[length:]
        entry.version += 1

    def remove(self, path: str) -> None:
        self.rpc_count += 1
        path = normalize(path)
        if path in self._dirs:
            if self.listdir(path):
                raise ShareError(f"directory not empty: {path!r}")
            if path == "/":
                raise ShareError("cannot remove the share root")
            del self._dirs[path]
            return
        if path not in self._files:
            raise NoSuchFile(path)
        del self._files[path]

    def size(self, path: str) -> int:
        return self.stat(path).size

    def total_bytes(self) -> int:
        return sum(len(e.data) for e in self._files.values())
