"""Host-side simulated TCP network.

Clients (the workload generators) connect through a :class:`HostNetwork`
to ports the unikernel's LWIP component listens on.  Connections carry
real sequence/acknowledgement numbers — the ground truth the network
verifies on every segment.  This matters for the reproduction because
the paper's one "runtime data" special case is LWIP (§V-B): packet
sequence and ACK numbers are granted at runtime by the peer, so log
replay alone cannot rebuild them.  If a rebooted LWIP comes back with
wrong numbers, the network resets the connection — exactly the failure
VampOS's runtime-data saving prevents.

Full reboots re-attach the whole stack (:meth:`HostNetwork.attach_stack`),
which resets every existing connection: that is the 25.1 % connection
loss of Table V's Unikraft bar.  A VampOS component reboot restores LWIP
without re-attaching, so connections survive.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.engine import Simulation


class NetError(Exception):
    """Base class for network errors."""


class ConnectionRefused(NetError):
    def __init__(self, port: int) -> None:
        super().__init__(f"connection refused on port {port}")
        self.port = port


class ConnectionReset(NetError):
    def __init__(self, conn_id: int, reason: str = "") -> None:
        super().__init__(
            f"connection {conn_id} reset" + (f": {reason}" if reason else ""))
        self.conn_id = conn_id
        self.reason = reason


class TcpState(enum.Enum):
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    CLOSE_WAIT = "close-wait"
    CLOSED = "closed"
    RESET = "reset"


@dataclass
class Connection:
    """One TCP connection between a client and the unikernel."""

    conn_id: int
    port: int
    client_isn: int
    server_isn: int
    state: TcpState = TcpState.SYN_RCVD
    #: bytes the client has sent / the server has sent (ground truth)
    client_sent: int = 0
    server_sent: int = 0
    #: bytes each side has consumed from its inbound buffer
    client_consumed: int = 0
    server_consumed: int = 0
    to_server: bytearray = field(default_factory=bytearray)
    to_client: bytearray = field(default_factory=bytearray)
    reset_reason: str = ""

    @property
    def client_seq(self) -> int:
        """Next sequence number the client will use."""
        return self.client_isn + self.client_sent

    @property
    def server_seq(self) -> int:
        """Next sequence number the server must use."""
        return self.server_isn + self.server_sent

    @property
    def server_rcv_nxt(self) -> int:
        """Next client byte the server expects (its ACK number)."""
        return self.client_isn + self.server_consumed

    def is_open(self) -> bool:
        return self.state in (TcpState.SYN_RCVD, TcpState.ESTABLISHED,
                              TcpState.CLOSE_WAIT)


@dataclass
class Listener:
    port: int
    backlog: int
    pending: List[int] = field(default_factory=list)  # conn ids awaiting accept


class HostNetwork:
    """The network fabric between workload clients and one unikernel."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._conn_ids = itertools.count(1)
        self.connections: Dict[int, Connection] = {}
        self.listeners: Dict[int, Listener] = {}
        self._stack_generation = 0
        #: counters for the experiments
        self.resets = 0
        self.refused = 0

    # --- server (LWIP) side ----------------------------------------------------

    def attach_stack(self) -> int:
        """A (re)booted network stack attaches.

        Attaching models the whole NIC coming up from scratch: every
        existing connection is reset and all listeners vanish.  Called
        from LWIP's boot path — so a full reboot resets clients, while a
        checkpoint-restore (which skips boot) keeps them.
        Returns a generation token.
        """
        for conn in self.connections.values():
            if conn.is_open():
                self._reset(conn, "stack reattached (full reboot)")
        self.listeners.clear()
        self._stack_generation += 1
        self.sim.emit("net", "stack_attached",
                      generation=self._stack_generation)
        return self._stack_generation

    def listen(self, port: int, backlog: int = 128) -> Listener:
        """Register (or re-register) a listener.

        Idempotent on purpose: VampOS's log replay re-executes
        ``listen()`` after an LWIP reboot, and that must not clobber the
        pending-connection queue that survived on the host side.
        """
        existing = self.listeners.get(port)
        if existing is not None:
            existing.backlog = backlog
            return existing
        listener = Listener(port=port, backlog=backlog)
        self.listeners[port] = listener
        self.sim.emit("net", "listen", port=port)
        return listener

    def unlisten(self, port: int) -> None:
        self.listeners.pop(port, None)

    def accept(self, port: int) -> Optional[Dict[str, int]]:
        """Pop one pending connection.

        Returns the handshake info LWIP needs to build its pcb — the
        connection id plus both initial sequence numbers (a real stack
        learns these from the SYN/SYN-ACK exchange) — or ``None`` when
        nothing is pending.
        """
        listener = self.listeners.get(port)
        if listener is None or not listener.pending:
            return None
        conn_id = listener.pending.pop(0)
        conn = self.connections[conn_id]
        conn.state = TcpState.ESTABLISHED
        self.sim.emit("net", "accepted", conn=conn_id, port=port)
        return {"conn_id": conn_id, "client_isn": conn.client_isn,
                "server_isn": conn.server_isn}

    def server_send(self, conn_id: int, data: bytes, seq: int) -> int:
        """LWIP transmits ``data`` claiming sequence number ``seq``.

        The network verifies the claim against ground truth; a stale or
        futuristic sequence number (a rebooted stack that lost its pcb)
        resets the connection.
        """
        conn = self._open_conn(conn_id)
        if seq != conn.server_seq:
            self._reset(conn, f"bad server seq {seq}, "
                              f"expected {conn.server_seq}")
            raise ConnectionReset(conn_id, conn.reset_reason)
        conn.to_client.extend(data)
        conn.server_sent += len(data)
        self.sim.charge("net_tx", self.sim.costs.net_latency
                        + len(data) * self.sim.costs.net_per_byte)
        return len(data)

    def server_recv(self, conn_id: int, max_bytes: int, ack: int) -> bytes:
        """LWIP consumes inbound bytes, acknowledging up to ``ack``."""
        conn = self._open_conn(conn_id)
        if ack != conn.server_rcv_nxt:
            self._reset(conn, f"bad server ack {ack}, "
                              f"expected {conn.server_rcv_nxt}")
            raise ConnectionReset(conn_id, conn.reset_reason)
        chunk = bytes(conn.to_server[:max_bytes])
        del conn.to_server[:len(chunk)]
        conn.server_consumed += len(chunk)
        return chunk

    def server_pending_bytes(self, conn_id: int) -> int:
        """Inbound bytes waiting for the server; -1 means EOF/reset
        (the peer is gone and the buffer is drained)."""
        conn = self.connections.get(conn_id)
        if conn is None:
            return -1
        if conn.to_server:
            return len(conn.to_server)
        if not conn.is_open():
            return -1
        return 0

    def server_close(self, conn_id: int) -> None:
        conn = self.connections.get(conn_id)
        if conn is not None and conn.state is not TcpState.RESET:
            conn.state = TcpState.CLOSED
            self.sim.emit("net", "server_close", conn=conn_id)

    def reset_connection(self, conn_id: int, reason: str = "aborted") -> None:
        conn = self.connections.get(conn_id)
        if conn is not None and conn.is_open():
            self._reset(conn, reason)

    # --- client side ---------------------------------------------------------------

    def connect(self, port: int) -> "ClientSocket":
        """Three-way handshake from a client to a listening port."""
        self.sim.charge("net_rtt", 1.5 * self.sim.costs.net_latency * 2)
        listener = self.listeners.get(port)
        if listener is None or len(listener.pending) >= listener.backlog:
            self.refused += 1
            self.sim.emit("net", "refused", port=port)
            raise ConnectionRefused(port)
        rng = self.sim.rng.stream("tcp-isn")
        conn = Connection(
            conn_id=next(self._conn_ids),
            port=port,
            client_isn=rng.randint(1, 2**31),
            server_isn=rng.randint(1, 2**31),
        )
        self.connections[conn.conn_id] = conn
        listener.pending.append(conn.conn_id)
        self.sim.emit("net", "syn", conn=conn.conn_id, port=port)
        return ClientSocket(self, conn.conn_id)

    # --- internals ---------------------------------------------------------------------

    def _open_conn(self, conn_id: int) -> Connection:
        conn = self.connections.get(conn_id)
        if conn is None:
            raise ConnectionReset(conn_id, "unknown connection")
        if conn.state is TcpState.RESET:
            raise ConnectionReset(conn_id, conn.reset_reason)
        if conn.state is TcpState.CLOSED:
            raise ConnectionReset(conn_id, "connection closed")
        return conn

    def _reset(self, conn: Connection, reason: str) -> None:
        conn.state = TcpState.RESET
        conn.reset_reason = reason
        self.resets += 1
        self.sim.emit("net", "rst", conn=conn.conn_id, reason=reason)

    def open_connections(self) -> List[int]:
        return [cid for cid, c in self.connections.items() if c.is_open()]


class ClientSocket:
    """Client-side handle used by workload generators."""

    def __init__(self, network: HostNetwork, conn_id: int) -> None:
        self._net = network
        self.conn_id = conn_id

    @property
    def connection(self) -> Connection:
        return self._net.connections[self.conn_id]

    def _require_open(self) -> Connection:
        conn = self.connection
        if conn.state is TcpState.RESET:
            raise ConnectionReset(self.conn_id, conn.reset_reason)
        if conn.state is TcpState.CLOSED:
            raise ConnectionReset(self.conn_id, "closed by server")
        return conn

    def send(self, data: bytes) -> int:
        conn = self._require_open()
        conn.to_server.extend(data)
        conn.client_sent += len(data)
        self._net.sim.charge(
            "net_tx", self._net.sim.costs.net_latency
            + len(data) * self._net.sim.costs.net_per_byte)
        return len(data)

    def recv(self, max_bytes: int = 65536) -> bytes:
        conn = self.connection
        if conn.state is TcpState.RESET:
            raise ConnectionReset(self.conn_id, conn.reset_reason)
        # After a server-side close (FIN), buffered bytes remain
        # readable; an empty buffer then reads as EOF (b"").
        chunk = bytes(conn.to_client[:max_bytes])
        del conn.to_client[:len(chunk)]
        conn.client_consumed += len(chunk)
        return chunk

    def pending(self) -> int:
        return len(self.connection.to_client)

    def close(self) -> None:
        conn = self.connection
        if conn.is_open():
            conn.state = TcpState.CLOSED
            self._net.sim.emit("net", "client_close", conn=self.conn_id)

    @property
    def is_reset(self) -> bool:
        return self.connection.state is TcpState.RESET

    @property
    def is_open(self) -> bool:
        return self.connection.is_open()
