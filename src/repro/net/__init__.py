"""Host-side simulated environment: 9P file share and TCP network."""

from .hostshare import (
    FileExists,
    HostShare,
    IsADirectory,
    NoSuchFile,
    NotADirectory,
    ShareError,
    ShareStat,
    normalize,
)
from .tcp import (
    ClientSocket,
    Connection,
    ConnectionRefused,
    ConnectionReset,
    HostNetwork,
    Listener,
    NetError,
    TcpState,
)

__all__ = [
    "FileExists",
    "HostShare",
    "IsADirectory",
    "NoSuchFile",
    "NotADirectory",
    "ShareError",
    "ShareStat",
    "normalize",
    "ClientSocket",
    "Connection",
    "ConnectionRefused",
    "ConnectionReset",
    "HostNetwork",
    "Listener",
    "NetError",
    "TcpState",
]
