"""Order-independent result merging.

Workers complete in whatever order the host scheduler picks; these
helpers reassemble their results into the canonical cell order so the
downstream report build is independent of completion order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple


def merge_indexed(pairs: Iterable[Tuple[int, Any]], size: int) -> List[Any]:
    """Reassemble ``(cell_index, result)`` pairs — arriving in *any*
    order — into a list ordered by cell index."""
    results: List[Any] = [None] * size
    seen = [False] * size
    for index, value in pairs:
        if not 0 <= index < size:
            raise IndexError(f"cell index {index} outside [0, {size})")
        if seen[index]:
            raise ValueError(f"duplicate result for cell {index}")
        results[index] = value
        seen[index] = True
    missing = [i for i, ok in enumerate(seen) if not ok]
    if missing:
        raise ValueError(f"missing results for cells {missing}")
    return results


def merge_sums(dicts: Iterable[Dict[Any, Any]]) -> Dict[Any, Any]:
    """Key-wise summation fold of numeric-valued dicts.

    Addition is commutative and associative, so the *content* is
    independent of shard completion order; iterating the inputs in
    canonical cell order additionally pins the key insertion order,
    exactly like :func:`merge_dicts`.  The observability layer's
    counters and histogram buckets merge through here.
    """
    merged: Dict[Any, Any] = {}
    for d in dicts:
        for key, value in d.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def merge_dicts(dicts: Iterable[Dict[Any, Any]]) -> Dict[Any, Any]:
    """Union per-cell result dicts in the given (canonical) order.

    Cells own disjoint key sets, so the union is order-independent in
    content; iterating in canonical order additionally pins the
    insertion order, keeping any downstream iteration byte-identical
    with the serial run.
    """
    merged: Dict[Any, Any] = {}
    for d in dicts:
        for key in d.keys() & merged.keys():
            raise ValueError(f"cells disagree on key {key!r}")
        merged.update(d)
    return merged
