"""The worker pool: shard pure cells across processes.

``parallel_map(fn, cells, jobs)`` is the single entry point.  ``fn``
must be a module-level (picklable) function and every cell an argument
tuple; each invocation builds its own seeded simulation, so cells share
nothing and any execution order is valid.  Results stream back tagged
with their cell index (``imap_unordered``) and are merged back into
canonical order by :func:`repro.parallel.merge.merge_indexed` — the
merge, not the scheduler, defines the output order.

Nested maps never nest pools: workers flag themselves via the pool
initializer, and ``parallel_map`` inside a worker degrades to the
serial loop.  The serial loop is also the ``jobs <= 1`` path, so a
``--jobs 1`` run executes exactly the code a parallel worker would.

On platforms with ``fork`` (Linux) workers inherit the warm parent
process; elsewhere ``spawn`` re-imports ``repro`` — both are safe
because cells depend only on their arguments and module-level
constants.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .merge import merge_indexed

#: set in pool workers by the initializer; guards against nested pools
_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a parallel_map pool worker."""
    return _IN_WORKER


def _worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` means every host CPU."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _call_indexed(packed: Tuple[int, Callable[..., Any], Tuple[Any, ...]]
                  ) -> Tuple[int, Any]:
    index, fn, args = packed
    if os.environ.get("REPRO_OBS") == "1":
        # Flight recorder on: bracket the cell with a fresh collector
        # (discarding fork-inherited parent state) and ship the cell's
        # observability blob home alongside its result.
        from ..obs import state as obs_state
        obs_state.begin_cell()
        result = fn(*args)
        return index, (result, obs_state.harvest_cell())
    return index, fn(*args)


def _serial_map_observed(fn: Callable[..., Any],
                         cells: List[Tuple[Any, ...]]) -> List[Any]:
    """The serial loop under the flight recorder: bracket every cell
    exactly like a pool worker would, then fold the blobs in canonical
    order.  Routing the serial path through the same per-cell-then-fold
    accumulation makes float totals group identically, so recordings
    are *byte*-identical at any ``--jobs``."""
    from ..obs import state as obs_state
    results: List[Any] = []
    blobs: List[Any] = []
    saved = obs_state.suspend_collector()
    try:
        for args in cells:
            obs_state.begin_cell()
            results.append(fn(*args))
            blobs.append(obs_state.harvest_cell())
    finally:
        obs_state.restore_collector(saved)
    for blob in blobs:
        obs_state.absorb(blob)
    return results


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def parallel_map(fn: Callable[..., Any],
                 cells: Sequence[Tuple[Any, ...]],
                 jobs: Optional[int] = 1) -> List[Any]:
    """Run ``fn(*cell)`` for every cell, on up to ``jobs`` processes.

    Returns results in cell order regardless of completion order.  The
    serial path (``jobs <= 1``, a single cell, or already inside a
    worker) runs in-process and produces the identical result list.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1 or _IN_WORKER:
        if os.environ.get("REPRO_OBS") == "1":
            return _serial_map_observed(fn, cells)
        return [fn(*args) for args in cells]
    tagged = [(index, fn, tuple(args)) for index, args in enumerate(cells)]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(cells)),
                  initializer=_worker_init) as pool:
        merged = merge_indexed(pool.imap_unordered(_call_indexed, tagged),
                               len(cells))
    if os.environ.get("REPRO_OBS") == "1":
        # Absorb worker blobs in canonical cell order: span/track ids
        # are renumbered by running totals, reproducing exactly the id
        # sequence the serial loop (which records straight into the
        # live collector) would have allocated.
        from ..obs import state as obs_state
        results = []
        for result, blob in merged:
            obs_state.absorb(blob)
            results.append(result)
        return results
    return merged
