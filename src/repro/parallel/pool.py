"""The worker pool: shard pure cells across processes.

``parallel_map(fn, cells, jobs)`` is the single entry point.  ``fn``
must be a module-level (picklable) function and every cell an argument
tuple; each invocation builds its own seeded simulation, so cells share
nothing and any execution order is valid.  Results stream back tagged
with their cell index (``imap_unordered``) and are merged back into
canonical order by :func:`repro.parallel.merge.merge_indexed` — the
merge, not the scheduler, defines the output order.

Nested maps never nest pools: workers flag themselves via the pool
initializer, and ``parallel_map`` inside a worker degrades to the
serial loop.  The serial loop is also the ``jobs <= 1`` path, so a
``--jobs 1`` run executes exactly the code a parallel worker would.

On platforms with ``fork`` (Linux) workers inherit the warm parent
process; elsewhere ``spawn`` re-imports ``repro`` — both are safe
because cells depend only on their arguments and module-level
constants.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .merge import merge_indexed

#: set in pool workers by the initializer; guards against nested pools
_IN_WORKER = False


def in_worker() -> bool:
    """Whether this process is a parallel_map pool worker."""
    return _IN_WORKER


def _worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` means every host CPU."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _call_indexed(packed: Tuple[int, Callable[..., Any], Tuple[Any, ...]]
                  ) -> Tuple[int, Any]:
    index, fn, args = packed
    return index, fn(*args)


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def parallel_map(fn: Callable[..., Any],
                 cells: Sequence[Tuple[Any, ...]],
                 jobs: Optional[int] = 1) -> List[Any]:
    """Run ``fn(*cell)`` for every cell, on up to ``jobs`` processes.

    Returns results in cell order regardless of completion order.  The
    serial path (``jobs <= 1``, a single cell, or already inside a
    worker) runs in-process and produces the identical result list.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1 or _IN_WORKER:
        return [fn(*args) for args in cells]
    tagged = [(index, fn, tuple(args)) for index, args in enumerate(cells)]
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(cells)),
                  initializer=_worker_init) as pool:
        return merge_indexed(pool.imap_unordered(_call_indexed, tagged),
                             len(cells))
