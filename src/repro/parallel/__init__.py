"""Parallel experiment engine.

Experiments decompose into independent *cells* — (experiment, mode,
seed/trial) triples that each build their own seeded :class:`Simulation`
and share no state.  This package shards cells across a
``multiprocessing`` pool:

* :func:`parallel_map` — run one picklable cell function over a list of
  argument tuples, on ``jobs`` worker processes (serial when
  ``jobs <= 1``, when there is one cell, or inside a worker — nested
  maps never spawn nested pools);
* :func:`shard_seed` — deterministic per-shard seed derivation
  (sha256-based, stable across processes, platforms and
  ``PYTHONHASHSEED``);
* :func:`merge_indexed` — the order-independent result merge: workers
  finish in any order, results are reassembled by cell index.

The contract is **byte-identical reports**: because every cell is a
pure function of its arguments and the merge is keyed by cell index,
``--jobs N`` produces exactly the output of the serial run — the pool
only changes wall-clock time, never virtual time or report content.
"""

from .pool import in_worker, parallel_map, resolve_jobs
from .merge import merge_dicts, merge_indexed, merge_sums
from .seeding import shard_seed, trial_seeds

__all__ = [
    "in_worker",
    "merge_dicts",
    "merge_indexed",
    "merge_sums",
    "parallel_map",
    "resolve_jobs",
    "shard_seed",
    "trial_seeds",
]
