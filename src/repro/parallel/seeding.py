"""Deterministic per-shard seed derivation.

Mirrors :class:`repro.sim.rng.DeterministicRNG`'s stream derivation:
seeds are derived by hashing, never by drawing from a shared generator,
so a shard's seed depends only on the root seed and the shard's labels
— not on how many shards exist, which worker runs it, or in what order.
``hashlib`` (not ``hash()``) keeps the derivation stable across
processes, platforms and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from typing import List


def shard_seed(root_seed: int, *labels: object) -> int:
    """The seed for the shard identified by ``labels`` under
    ``root_seed``.  Labels may be strings, ints, or anything with a
    stable ``repr`` (mode names, trial indices, experiment ids)."""
    text = ":".join([str(int(root_seed))] + [repr(label) for label in labels])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def trial_seeds(root_seed: int, trials: int,
                label: str = "trial") -> List[int]:
    """``trials`` independent seeds for repeated-trial sweeps.

    Trial 0 keeps the root seed itself so a one-trial sweep is
    bit-identical to the pre-sharding single run; extra trials get
    hash-derived seeds.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    return [root_seed] + [shard_seed(root_seed, label, i)
                          for i in range(1, trials)]
