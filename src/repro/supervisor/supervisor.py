"""The recovery supervisor: policy around the reboot mechanism.

:class:`RecoverySupervisor` owns everything that happens *after* the
failure detector hands over a failed in-flight call:

* it walks the pluggable **escalation ladder** (:mod:`.ladder`) rung by
  rung, retrying the failed call after every remedy, until one rung
  recovers, the degrade rung quarantines the component, or the ladder
  is exhausted and the kernel fail-stops gracefully;
* it enforces **per-component retry budgets with exponential backoff**
  (:mod:`.budget`) — chronic failers wait out geometrically growing
  quarantines, charged to virtual time;
* it trips **crash storms** (flapping components) straight into
  **degraded mode**: interface calls are answered with an ENODEV-style
  :class:`SyscallError` instead of dispatching, recorded in caller
  return-value logs like any other errno so replay stays consistent;
* it **probes** degraded components from the heart-beat sweep at
  geometrically backed-off intervals and restores them when a probe
  reboot succeeds;
* it accumulates **telemetry** (:mod:`.telemetry`) for the experiment
  reports.

Everything is deterministic in virtual time: the same seed and workload
produce the same ladder walk, the same charges and the same telemetry,
whatever the host or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..unikernel.errors import (
    ComponentFailure,
    HangDetected,
    RecoveryFailed,
    SyscallError,
    UnrebootableComponent,
)
from ..obs.slo import ledger_now_us
from .budget import CrashStormDetector, RetryBudget
from .ladder import DEFAULT_LADDER, LadderRung
from .telemetry import PhaseClock, RecoveryTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.runtime import RebootRecord, VampOSKernel
    from ..unikernel.component import Component

#: the errno degraded components answer with
DEGRADED_ERRNO = "ENODEV"


@dataclass
class DegradedState:
    """Book-keeping for one quarantined component."""

    entered_us: float
    probe_at_us: float
    probe_interval_us: float
    reason: str


class RecoverySupervisor:
    """Escalation, budgets, storm detection and degradation for one
    :class:`~repro.core.runtime.VampOSKernel`."""

    def __init__(self, kernel: "VampOSKernel",
                 ladder: Optional[List[LadderRung]] = None) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        config = kernel.config
        #: the escalation ladder, in order; pluggable per kernel
        self.ladder: List[LadderRung] = (
            list(ladder) if ladder is not None else list(DEFAULT_LADDER))
        self.telemetry = RecoveryTelemetry()
        self.storm = CrashStormDetector(threshold=config.storm_threshold,
                                        window_us=config.storm_window_us)
        self._budgets: Dict[str, RetryBudget] = {}
        #: quarantined components, by name
        self.degraded: Dict[str, DegradedState] = {}
        #: lifetime degrade entries per component (drives the
        #: geometric probation interval)
        self._degrade_counts: Dict[str, int] = {}
        #: stack of phase clocks for in-flight recovery episodes; the
        #: top clock receives every :meth:`phase_mark` (nested episodes
        #: — a ladder walk whose rung reboots — attribute to the walk)
        self._phase_clocks: List[PhaseClock] = []

    # --- MTTR phase attribution -------------------------------------------

    def phase_push(self, kind: str) -> PhaseClock:
        """Open a phase clock for one recovery episode (``kind`` is
        "ladder", "sweep", "storm" or "root").  Phase clocks run on
        charged virtual time (:func:`~repro.obs.slo.ledger_now_us`),
        so attribution is invariant to the recovery scheduler's clock
        overlap."""
        clock = PhaseClock(kind, ledger_now_us(self.sim.ledger))
        self._phase_clocks.append(clock)
        return clock

    def phase_pop(self, clock: PhaseClock) -> None:
        """Close an episode: fold its phase breakdown into telemetry."""
        self._phase_clocks.remove(clock)
        if clock.phases:
            self.telemetry.note_phases(clock.kind, clock.phases)

    def phase_mark(self, phase: str) -> None:
        """Attribute virtual time since the last mark to ``phase`` on
        the innermost open episode (no-op outside an episode)."""
        clocks = self._phase_clocks
        if clocks:
            # inlined ledger_now_us — this runs several times per reboot
            clocks[-1].mark(phase, self.sim.ledger.elapsed_us)

    def _slo_note(self, component: str, state: str) -> None:
        slo = getattr(self.kernel, "slo", None)
        if slo is not None:
            slo.note_state(component, state,
                           ledger_now_us(self.sim.ledger))

    # --- budgets ----------------------------------------------------------

    def budget_for(self, name: str) -> RetryBudget:
        budget = self._budgets.get(name)
        if budget is None:
            config = self.kernel.config
            budget = RetryBudget(budget=config.retry_budget,
                                 window_us=config.retry_window_us,
                                 base_us=config.backoff_base_us,
                                 factor=config.backoff_factor,
                                 cap_us=config.backoff_cap_us)
            self._budgets[name] = budget
        return budget

    # --- degraded mode ----------------------------------------------------

    def is_degraded(self, name: str) -> bool:
        return name in self.degraded

    def degraded_components(self) -> List[str]:
        """The quarantined set, sorted — the health signal external
        probes (the fleet balancer's router) drain on."""
        return sorted(self.degraded)

    def degraded_error(self, name: str, func: str) -> SyscallError:
        return SyscallError(
            DEGRADED_ERRNO,
            f"component {name!r} is degraded; {func} unavailable")

    def answer_degraded_call(self, name: str, func: str) -> SyscallError:
        """Charge and count one intercepted call into a degraded
        component; returns the error the dispatcher should raise."""
        self.sim.charge("degraded_call", self.sim.costs.degraded_call)
        self.telemetry.note_degraded_call(name)
        return self.degraded_error(name, func)

    def enter_degraded(self, name: str, reason: str) -> None:
        config = self.kernel.config
        count = self._degrade_counts.get(name, 0) + 1
        self._degrade_counts[name] = count
        interval = min(config.probation_cap_us,
                       config.probation_base_us
                       * config.probation_factor ** (count - 1))
        now = self.sim.clock.now_us
        self.degraded[name] = DegradedState(
            entered_us=now, probe_at_us=now + interval,
            probe_interval_us=interval, reason=reason)
        self.telemetry.note_degraded_enter(name, now)
        self._slo_note(name, "degraded")
        self.sim.emit("supervisor", "degraded", component=name,
                      reason=reason, probe_at_us=now + interval)

    def exit_degraded(self, name: str) -> None:
        if self.degraded.pop(name, None) is None:
            return
        self.telemetry.note_degraded_exit(name, self.sim.clock.now_us)
        self._slo_note(name, "up")
        self.sim.emit("supervisor", "restored", component=name)

    # --- the failure entry point ------------------------------------------

    def handle_failure(self, comp: "Component", func: str,
                       args: Tuple[Any, ...], kwargs: Dict[str, Any],
                       failure: ComponentFailure) -> Any:
        """Recover ``comp`` after ``func`` failed in-flight.

        Returns the retried call's result on success; raises the
        degraded :class:`SyscallError` when the component ends up
        quarantined; raises :class:`RecoveryFailed` (via
        ``kernel.fail_stop``) when the ladder is exhausted.
        """
        kernel = self.kernel
        sim = self.sim
        name = comp.NAME
        kind = "hang" if isinstance(failure, HangDetected) else "panic"
        kernel.detector.record(name, kind, str(failure))
        start_us = sim.clock.now_us
        obs = sim.obs
        fspan = None
        if obs is not None:
            obs.inc("supervisor.failures")
            fspan = obs.open_span("recovery", name, func=func, kind=kind)
        clock = self.phase_push("ladder")
        try:
            return self._walk_ladder(comp, func, args, kwargs, failure,
                                     name, kind, start_us)
        finally:
            self.phase_pop(clock)
            if obs is not None:
                obs.close_span(fspan)
                obs.observe("supervisor.mttr_us",
                            sim.clock.now_us - start_us)

    def _walk_ladder(self, comp: "Component", func: str,
                     args: Tuple[Any, ...], kwargs: Dict[str, Any],
                     failure: ComponentFailure, name: str, kind: str,
                     start_us: float) -> Any:
        """The ladder walk proper (wrapped in a recovery span above)."""
        kernel = self.kernel
        sim = self.sim
        obs = sim.obs
        sim.charge("supervisor_scan", sim.costs.supervisor_scan)
        self.phase_mark("detect")

        # Crash storm: a flapping component gets no more ladder walks —
        # straight into quarantine (when degradation is armed).
        if self.storm.tripped(kernel.detector, name, sim.clock.now_us):
            self.telemetry.note_storm(name)
            sim.emit("supervisor", "crash_storm", component=name,
                     window_us=self.storm.window_us,
                     threshold=self.storm.threshold)
            if kernel.config.degraded_mode_enabled:
                sim.charge("rung_degrade", sim.costs.rung_degrade)
                self.phase_mark("plan")
                self.telemetry.note_rung(name, "degrade")
                if obs is not None:
                    obs.inc("supervisor.rung.degrade")
                self.enter_degraded(name, reason="crash storm")
                raise self.degraded_error(name, func)

        # Retry budget: over-budget recoveries wait out an exponential
        # quarantine first, charged to the virtual clock.
        delay = self.budget_for(name).register(sim.clock.now_us)
        if delay > 0:
            self._slo_note(name, "quarantined")
            sim.charge("quarantine_backoff", delay)
            self.phase_mark("plan")
            self.telemetry.note_quarantine(name, delay)
            sim.emit("supervisor", "quarantine", component=name,
                     delay_us=delay)

        current: BaseException = failure
        for rung in self.ladder:
            if not rung.applies(self, name, current):
                continue
            for plan in rung.plans(self, name):
                if sim.probes is not None:
                    sim.probes.fire("ladder_rung", component=name,
                                    rung=rung.key)
                self.phase_mark("detect")
                sim.charge(rung.cost_attr,
                           getattr(sim.costs, rung.cost_attr))
                self.phase_mark("plan")
                self.telemetry.note_rung(name, rung.key)
                rung_span = None
                if obs is not None:
                    obs.inc(f"supervisor.rung.{rung.key}")
                    rung_span = obs.open_span("rung", rung.key,
                                              component=name)
                sim.emit("supervisor", "rung", component=name,
                         rung=rung.key)
                try:
                    plan(self, name, current)
                except RecoveryFailed as dead:
                    # The remedy's own reboot died (replay re-triggered
                    # the fault).  Un-crash the kernel and let the next
                    # rung — fresh restart skips exactly this replay —
                    # have a go; the final fail-stop re-crashes it.
                    kernel.crashed = False
                    current = dead
                    self.phase_mark("reboot")
                    if obs is not None:
                        obs.close_span(rung_span, outcome="remedy_died")
                    continue
                self.phase_mark("reboot")
                if rung.degrades:
                    if obs is not None:
                        obs.close_span(rung_span, outcome="degraded")
                    raise self.degraded_error(name, func)
                try:
                    result = kernel.component(name).call_interface(
                        func, args, kwargs)
                except ComponentFailure as again:
                    current = again
                    self.phase_mark("resume")
                    if obs is not None:
                        obs.close_span(rung_span, outcome="retry_failed")
                    continue
                self.phase_mark("resume")
                top = self._phase_clocks[-1] if self._phase_clocks \
                    else None
                self.telemetry.note_recovered(
                    name, kind, rung.key, start_us, sim.clock.now_us,
                    phases=top.phases if top is not None else None)
                if obs is not None:
                    obs.inc("supervisor.recovered")
                    obs.close_span(rung_span, outcome="recovered")
                sim.emit("supervisor", "recovered", component=name,
                         rung=rung.key,
                         mttr_us=sim.clock.now_us - start_us)
                return result
        self.telemetry.note_fail_stop(name)
        if obs is not None:
            obs.inc("supervisor.fail_stops")
        return kernel.fail_stop(name, current)

    # --- probation (driven by the heart-beat sweep) -----------------------

    def tick(self) -> List["RebootRecord"]:
        """Probe every degraded component whose probation elapsed.

        Called from ``VampOSKernel.heartbeat``.  A successful probe
        reboot (replay first, checkpoint-only as fallback) restores the
        component to service; a failed probe extends the quarantine
        geometrically.
        """
        now = self.sim.clock.now_us
        # Probe in (next-probe-time, name) order — not dict insertion
        # order — so the probe sequence is schedule-stable: the
        # longest-overdue component is retried first, ties break
        # alphabetically, and the order never depends on the history
        # of degrade entries.
        due = [name for _, name in
               sorted((state.probe_at_us, name)
                      for name, state in self.degraded.items()
                      if now >= state.probe_at_us)]
        records: List["RebootRecord"] = []
        for name in due:
            record = self._probe(name)
            if record is not None:
                records.append(record)
        return records

    def _probe(self, name: str) -> Optional["RebootRecord"]:
        kernel = self.kernel
        self.sim.emit("supervisor", "probe", component=name)
        try:
            record = kernel.reboot_component(name, reason="probation")
        except RecoveryFailed:
            kernel.crashed = False
            try:
                record = kernel.reboot_component(
                    name, reason="probation", replay=False)
            except RecoveryFailed:
                kernel.crashed = False
                self._extend_probation(name)
                return None
        except UnrebootableComponent:
            self._extend_probation(name)
            return None
        self.exit_degraded(name)
        return record

    def _extend_probation(self, name: str) -> None:
        config = self.kernel.config
        count = self._degrade_counts.get(name, 0) + 1
        self._degrade_counts[name] = count
        interval = min(config.probation_cap_us,
                       config.probation_base_us
                       * config.probation_factor ** (count - 1))
        state = self.degraded[name]
        state.probe_at_us = self.sim.clock.now_us + interval
        state.probe_interval_us = interval
        self.sim.emit("supervisor", "probe_failed", component=name,
                      next_probe_at_us=state.probe_at_us)
