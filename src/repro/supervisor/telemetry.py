"""Recovery telemetry: what the supervisor did and what it cost.

Per-component ladder-rung counters, MTTR (mean-time-to-recovery)
samples, quarantine/backoff totals, crash-storm trips and
time-in-degraded intervals.  Experiments surface these through
:mod:`repro.metrics.report` subtables and the CLI; everything here is
plain data keyed by component name, rendered in sorted order so reports
stay byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.stats import Summary, summarize
from ..obs.metrics import Histogram

#: the MTTR phase taxonomy, in canonical (pipeline) order
PHASES = ("detect", "plan", "checkpoint", "reboot", "replay", "resume")


def phase_sum(phases: Dict[str, float]) -> float:
    """The left-to-right sum of a phase dict in canonical
    :data:`PHASES` order.  Every consumer that needs "the sum of the
    phases" goes through here, so the float additions happen in one
    fixed order and recomputed sums are bit-identical to stored ones.
    """
    total = 0.0
    for phase in PHASES:
        value = phases.get(phase)
        if value is not None:
            total += value
    return total


class PhaseClock:
    """Splits one recovery episode into ordered phase durations.

    ``mark(phase, now)`` attributes the virtual time since the previous
    mark to ``phase``.  Negative deltas (the parallel recovery planner
    seeks the clock backwards between overlapping tracks) attribute
    nothing but still advance the cursor, so every phase total stays
    non-negative and deterministic.
    """

    __slots__ = ("kind", "phases", "_last_us")

    def __init__(self, kind: str, start_us: float) -> None:
        self.kind = kind
        self.phases: Dict[str, float] = {}
        self._last_us = start_us

    def mark(self, phase: str, now_us: float) -> None:
        delta = now_us - self._last_us
        self._last_us = now_us
        if delta <= 0.0:
            return
        self.phases[phase] = self.phases.get(phase, 0.0) + delta


@dataclass
class RecoveryOutcome:
    """One failure handled to completion by the supervisor."""

    component: str
    kind: str            # "panic" | "hang"
    rung: str            # the ladder rung that resolved it
    start_us: float
    end_us: float
    #: phase -> virtual us attributed (see :data:`PHASES`)
    phases: Dict[str, float] = field(default_factory=dict)
    #: the canonical-order :func:`phase_sum` of ``phases``, stored at
    #: note time — the per-recovery recorded MTTR the phase table's
    #: exactness claim checks against
    phase_total_us: float = 0.0

    @property
    def mttr_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class RecoveryTelemetry:
    """Counters and distributions accumulated by one supervisor."""

    #: component -> rung key -> attempts
    rung_attempts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: completed recoveries, in virtual-time order
    outcomes: List[RecoveryOutcome] = field(default_factory=list)
    #: component -> crash-storm trips
    storms: Dict[str, int] = field(default_factory=dict)
    #: component -> total backoff quarantine charged (virtual us)
    quarantine_us: Dict[str, float] = field(default_factory=dict)
    #: component -> calls answered with a degraded error
    degraded_calls: Dict[str, int] = field(default_factory=dict)
    #: component -> times it entered degraded mode
    degrade_entries: Dict[str, int] = field(default_factory=dict)
    #: component -> closed time-in-degraded total (virtual us)
    degraded_closed_us: Dict[str, float] = field(default_factory=dict)
    #: component -> entry time of the currently open degraded interval
    degraded_open_since_us: Dict[str, float] = field(default_factory=dict)
    #: component -> fail-stops the ladder could not prevent
    fail_stops: Dict[str, int] = field(default_factory=dict)
    #: episode kind ("ladder" | "sweep" | "storm" | "root") ->
    #: phase -> total virtual us attributed
    phase_totals: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: phase -> log2 histogram of per-episode phase durations
    phase_hists: Dict[str, Histogram] = field(default_factory=dict)
    #: episode kind -> episodes recorded
    phase_episodes: Dict[str, int] = field(default_factory=dict)
    #: episode kind -> summed per-episode canonical-order phase totals
    phase_mttr_us: Dict[str, float] = field(default_factory=dict)
    #: log2-bucketed MTTR distribution over completed recoveries, so
    #: reports can quote p50/p99 and shards merge without sketch drift
    mttr_hist: Histogram = field(default_factory=Histogram)
    #: per-track reboot durations inside parallel recovery plans
    track_mttr_hist: Histogram = field(default_factory=Histogram)
    #: parallel recovery plans executed / tracks they contained
    plans: int = 0
    plan_tracks: int = 0
    #: summed track durations (what the serial sweep would have cost)
    plan_serial_us: float = 0.0
    #: max-merged elapsed time the plans actually cost
    plan_planned_us: float = 0.0
    #: root microreboots and what they reclaimed
    root_reboots: int = 0
    root_downtime_us: float = 0.0
    root_slots_dropped: int = 0
    root_plans_dropped: int = 0
    root_tombstones_dropped: int = 0

    # --- recording (called by the supervisor) -----------------------------

    def note_rung(self, component: str, rung: str) -> None:
        per_comp = self.rung_attempts.setdefault(component, {})
        per_comp[rung] = per_comp.get(rung, 0) + 1

    def note_recovered(self, component: str, kind: str, rung: str,
                       start_us: float, end_us: float,
                       phases: Optional[Dict[str, float]] = None) -> None:
        phases = dict(phases) if phases else {}
        self.outcomes.append(RecoveryOutcome(
            component=component, kind=kind, rung=rung,
            start_us=start_us, end_us=end_us, phases=phases,
            phase_total_us=phase_sum(phases)))
        self.mttr_hist.observe(end_us - start_us)

    def note_phases(self, kind: str, phases: Dict[str, float]) -> None:
        """One finished recovery episode's phase breakdown (``kind`` is
        "ladder", "sweep", "storm" or "root")."""
        totals = self.phase_totals.setdefault(kind, {})
        for phase in PHASES:
            duration = phases.get(phase)
            if duration is None:
                continue
            totals[phase] = totals.get(phase, 0.0) + duration
            hist = self.phase_hists.get(phase)
            if hist is None:
                hist = self.phase_hists[phase] = Histogram()
            hist.observe(duration)
        self.phase_episodes[kind] = self.phase_episodes.get(kind, 0) + 1
        self.phase_mttr_us[kind] = \
            self.phase_mttr_us.get(kind, 0.0) + phase_sum(phases)

    def note_plan(self, track_durations_us: List[float],
                  planned_us: float) -> None:
        """One executed parallel recovery plan: per-track durations and
        the max-merged elapsed (critical-path) time."""
        self.plans += 1
        self.plan_tracks += len(track_durations_us)
        for duration in track_durations_us:
            self.plan_serial_us += duration
            self.track_mttr_hist.observe(duration)
        self.plan_planned_us += planned_us

    def note_root_reboot(self, downtime_us: float, slots: int,
                         plans: int, tombstones: int) -> None:
        """One root microreboot: its stall and the wear it reclaimed."""
        self.root_reboots += 1
        self.root_downtime_us += downtime_us
        self.root_slots_dropped += slots
        self.root_plans_dropped += plans
        self.root_tombstones_dropped += tombstones

    def note_storm(self, component: str) -> None:
        self.storms[component] = self.storms.get(component, 0) + 1

    def note_quarantine(self, component: str, delay_us: float) -> None:
        self.quarantine_us[component] = \
            self.quarantine_us.get(component, 0.0) + delay_us

    def note_degraded_call(self, component: str) -> None:
        self.degraded_calls[component] = \
            self.degraded_calls.get(component, 0) + 1

    def note_degraded_enter(self, component: str, now_us: float) -> None:
        self.degrade_entries[component] = \
            self.degrade_entries.get(component, 0) + 1
        self.degraded_open_since_us[component] = now_us

    def note_degraded_exit(self, component: str, now_us: float) -> None:
        entered = self.degraded_open_since_us.pop(component, None)
        if entered is not None:
            self.degraded_closed_us[component] = \
                self.degraded_closed_us.get(component, 0.0) \
                + (now_us - entered)

    def note_fail_stop(self, component: str) -> None:
        self.fail_stops[component] = self.fail_stops.get(component, 0) + 1

    # --- queries ----------------------------------------------------------

    def mttr_samples(self, component: Optional[str] = None) -> List[float]:
        return [o.mttr_us for o in self.outcomes
                if component is None or o.component == component]

    def mttr_summary(self, component: Optional[str] = None) -> \
            Optional[Summary]:
        samples = self.mttr_samples(component)
        return summarize(samples) if samples else None

    def mttr_quantile(self, q: float) -> float:
        """Bucket-resolution MTTR quantile over every recovery (log2
        buckets shared with :mod:`repro.obs.metrics`)."""
        return self.mttr_hist.quantile(q)

    def plan_speedup(self) -> Optional[float]:
        """Serial-equivalent over planned elapsed time across every
        executed plan (None until a plan has run)."""
        if self.plans == 0 or self.plan_planned_us <= 0.0:
            return None
        return self.plan_serial_us / self.plan_planned_us

    def time_in_degraded_us(self, component: str, now_us: float) -> float:
        """Closed intervals plus the currently open one (if any)."""
        total = self.degraded_closed_us.get(component, 0.0)
        entered = self.degraded_open_since_us.get(component)
        if entered is not None:
            total += now_us - entered
        return total

    def components(self) -> List[str]:
        """Every component the supervisor ever touched, sorted."""
        names = set(self.rung_attempts) | set(self.storms) \
            | set(self.quarantine_us) | set(self.degraded_calls) \
            | set(self.degrade_entries) | set(self.fail_stops) \
            | {o.component for o in self.outcomes}
        return sorted(names)

    def rung_total(self, rung: str) -> int:
        return sum(per_comp.get(rung, 0)
                   for per_comp in self.rung_attempts.values())

    def phase_exactness(self) -> Tuple[int, int]:
        """``(exact, total)`` over outcomes carrying phase attributions.

        An outcome is *exact* when recomputing the canonical-order
        :func:`phase_sum` of its phase dict reproduces the stored
        per-recovery MTTR bit-for-bit — the property the chaos-soak
        phase table claims, and one that survives pickling across pool
        workers and shard merges (floats round-trip exactly).
        """
        exact = total = 0
        for outcome in self.outcomes:
            if not outcome.phases:
                continue
            total += 1
            if phase_sum(outcome.phases) == outcome.phase_total_us:
                exact += 1
        return exact, total

    def phase_rows(self) -> List[List[Any]]:
        """Per-episode-kind phase table rows (see
        :data:`PHASE_ROW_HEADERS`): exact virtual-µs totals per phase
        plus the summed recorded MTTR and its log2-bucket p99."""
        rows: List[List[Any]] = []
        for kind in sorted(self.phase_totals):
            totals = self.phase_totals[kind]
            row: List[Any] = [kind, self.phase_episodes.get(kind, 0)]
            for phase in PHASES:
                row.append(f"{totals.get(phase, 0.0):.1f}us")
            row.append(f"{self.phase_mttr_us.get(kind, 0.0):.1f}us")
            rows.append(row)
        return rows

    def phase_quantile(self, phase: str, q: float) -> float:
        hist = self.phase_hists.get(phase)
        return hist.quantile(q) if hist is not None else 0.0

    def rows(self, now_us: float) -> List[List[Any]]:
        """Per-component report rows (see :data:`ROW_HEADERS`)."""
        rows: List[List[Any]] = []
        for name in self.components():
            attempts = self.rung_attempts.get(name, {})
            rungs = " ".join(f"{key}:{count}"
                             for key, count in sorted(attempts.items())) \
                or "-"
            mttr = self.mttr_summary(name)
            mttr_text = (f"{mttr.mean / 1e3:.2f}ms "
                         f"(p95 {mttr.p95 / 1e3:.2f})") if mttr else "-"
            rows.append([
                name,
                len([o for o in self.outcomes if o.component == name]),
                mttr_text,
                rungs,
                self.storms.get(name, 0),
                f"{self.quarantine_us.get(name, 0.0) / 1e3:.1f}ms",
                self.degraded_calls.get(name, 0),
                f"{self.time_in_degraded_us(name, now_us) / 1e3:.1f}ms",
            ])
        return rows

    def merged_with(self, other: "RecoveryTelemetry") -> \
            "RecoveryTelemetry":
        """Order-independent fold of two telemetry sets (for sharded
        experiments; open degraded intervals must be closed first)."""
        out = RecoveryTelemetry()
        for src in (self, other):
            for comp, per_comp in src.rung_attempts.items():
                dst = out.rung_attempts.setdefault(comp, {})
                for key, count in per_comp.items():
                    dst[key] = dst.get(key, 0) + count
            out.outcomes.extend(src.outcomes)
            for attr in ("storms", "quarantine_us", "degraded_calls",
                         "degrade_entries", "degraded_closed_us",
                         "fail_stops"):
                dst_map = getattr(out, attr)
                for comp, value in getattr(src, attr).items():
                    dst_map[comp] = dst_map.get(comp, 0) + value
            for kind, totals in src.phase_totals.items():
                dst_totals = out.phase_totals.setdefault(kind, {})
                for phase, duration in totals.items():
                    dst_totals[phase] = \
                        dst_totals.get(phase, 0.0) + duration
            for phase, hist in src.phase_hists.items():
                mine = out.phase_hists.get(phase)
                out.phase_hists[phase] = \
                    (hist if mine is None else mine.merged_with(hist))
            for attr in ("phase_episodes", "phase_mttr_us"):
                dst_map = getattr(out, attr)
                for kind, value in getattr(src, attr).items():
                    dst_map[kind] = dst_map.get(kind, 0) + value
            out.mttr_hist = out.mttr_hist.merged_with(src.mttr_hist)
            out.track_mttr_hist = \
                out.track_mttr_hist.merged_with(src.track_mttr_hist)
            out.plans += src.plans
            out.plan_tracks += src.plan_tracks
            out.plan_serial_us += src.plan_serial_us
            out.plan_planned_us += src.plan_planned_us
            out.root_reboots += src.root_reboots
            out.root_downtime_us += src.root_downtime_us
            out.root_slots_dropped += src.root_slots_dropped
            out.root_plans_dropped += src.root_plans_dropped
            out.root_tombstones_dropped += src.root_tombstones_dropped
        return out


#: column headers matching :meth:`RecoveryTelemetry.rows`
ROW_HEADERS = ["component", "recoveries", "MTTR", "rung attempts",
               "storms", "quarantine", "degraded calls",
               "time degraded"]

#: column headers matching :meth:`RecoveryTelemetry.phase_rows`
PHASE_ROW_HEADERS = ["episode kind", "episodes"] + list(PHASES) \
    + ["recorded MTTR"]
