"""Recovery telemetry: what the supervisor did and what it cost.

Per-component ladder-rung counters, MTTR (mean-time-to-recovery)
samples, quarantine/backoff totals, crash-storm trips and
time-in-degraded intervals.  Experiments surface these through
:mod:`repro.metrics.report` subtables and the CLI; everything here is
plain data keyed by component name, rendered in sorted order so reports
stay byte-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..metrics.stats import Summary, summarize
from ..obs.metrics import Histogram


@dataclass
class RecoveryOutcome:
    """One failure handled to completion by the supervisor."""

    component: str
    kind: str            # "panic" | "hang"
    rung: str            # the ladder rung that resolved it
    start_us: float
    end_us: float

    @property
    def mttr_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class RecoveryTelemetry:
    """Counters and distributions accumulated by one supervisor."""

    #: component -> rung key -> attempts
    rung_attempts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: completed recoveries, in virtual-time order
    outcomes: List[RecoveryOutcome] = field(default_factory=list)
    #: component -> crash-storm trips
    storms: Dict[str, int] = field(default_factory=dict)
    #: component -> total backoff quarantine charged (virtual us)
    quarantine_us: Dict[str, float] = field(default_factory=dict)
    #: component -> calls answered with a degraded error
    degraded_calls: Dict[str, int] = field(default_factory=dict)
    #: component -> times it entered degraded mode
    degrade_entries: Dict[str, int] = field(default_factory=dict)
    #: component -> closed time-in-degraded total (virtual us)
    degraded_closed_us: Dict[str, float] = field(default_factory=dict)
    #: component -> entry time of the currently open degraded interval
    degraded_open_since_us: Dict[str, float] = field(default_factory=dict)
    #: component -> fail-stops the ladder could not prevent
    fail_stops: Dict[str, int] = field(default_factory=dict)
    #: log2-bucketed MTTR distribution over completed recoveries, so
    #: reports can quote p50/p99 and shards merge without sketch drift
    mttr_hist: Histogram = field(default_factory=Histogram)
    #: per-track reboot durations inside parallel recovery plans
    track_mttr_hist: Histogram = field(default_factory=Histogram)
    #: parallel recovery plans executed / tracks they contained
    plans: int = 0
    plan_tracks: int = 0
    #: summed track durations (what the serial sweep would have cost)
    plan_serial_us: float = 0.0
    #: max-merged elapsed time the plans actually cost
    plan_planned_us: float = 0.0
    #: root microreboots and what they reclaimed
    root_reboots: int = 0
    root_downtime_us: float = 0.0
    root_slots_dropped: int = 0
    root_plans_dropped: int = 0
    root_tombstones_dropped: int = 0

    # --- recording (called by the supervisor) -----------------------------

    def note_rung(self, component: str, rung: str) -> None:
        per_comp = self.rung_attempts.setdefault(component, {})
        per_comp[rung] = per_comp.get(rung, 0) + 1

    def note_recovered(self, component: str, kind: str, rung: str,
                       start_us: float, end_us: float) -> None:
        self.outcomes.append(RecoveryOutcome(
            component=component, kind=kind, rung=rung,
            start_us=start_us, end_us=end_us))
        self.mttr_hist.observe(end_us - start_us)

    def note_plan(self, track_durations_us: List[float],
                  planned_us: float) -> None:
        """One executed parallel recovery plan: per-track durations and
        the max-merged elapsed (critical-path) time."""
        self.plans += 1
        self.plan_tracks += len(track_durations_us)
        for duration in track_durations_us:
            self.plan_serial_us += duration
            self.track_mttr_hist.observe(duration)
        self.plan_planned_us += planned_us

    def note_root_reboot(self, downtime_us: float, slots: int,
                         plans: int, tombstones: int) -> None:
        """One root microreboot: its stall and the wear it reclaimed."""
        self.root_reboots += 1
        self.root_downtime_us += downtime_us
        self.root_slots_dropped += slots
        self.root_plans_dropped += plans
        self.root_tombstones_dropped += tombstones

    def note_storm(self, component: str) -> None:
        self.storms[component] = self.storms.get(component, 0) + 1

    def note_quarantine(self, component: str, delay_us: float) -> None:
        self.quarantine_us[component] = \
            self.quarantine_us.get(component, 0.0) + delay_us

    def note_degraded_call(self, component: str) -> None:
        self.degraded_calls[component] = \
            self.degraded_calls.get(component, 0) + 1

    def note_degraded_enter(self, component: str, now_us: float) -> None:
        self.degrade_entries[component] = \
            self.degrade_entries.get(component, 0) + 1
        self.degraded_open_since_us[component] = now_us

    def note_degraded_exit(self, component: str, now_us: float) -> None:
        entered = self.degraded_open_since_us.pop(component, None)
        if entered is not None:
            self.degraded_closed_us[component] = \
                self.degraded_closed_us.get(component, 0.0) \
                + (now_us - entered)

    def note_fail_stop(self, component: str) -> None:
        self.fail_stops[component] = self.fail_stops.get(component, 0) + 1

    # --- queries ----------------------------------------------------------

    def mttr_samples(self, component: Optional[str] = None) -> List[float]:
        return [o.mttr_us for o in self.outcomes
                if component is None or o.component == component]

    def mttr_summary(self, component: Optional[str] = None) -> \
            Optional[Summary]:
        samples = self.mttr_samples(component)
        return summarize(samples) if samples else None

    def mttr_quantile(self, q: float) -> float:
        """Bucket-resolution MTTR quantile over every recovery (log2
        buckets shared with :mod:`repro.obs.metrics`)."""
        return self.mttr_hist.quantile(q)

    def plan_speedup(self) -> Optional[float]:
        """Serial-equivalent over planned elapsed time across every
        executed plan (None until a plan has run)."""
        if self.plans == 0 or self.plan_planned_us <= 0.0:
            return None
        return self.plan_serial_us / self.plan_planned_us

    def time_in_degraded_us(self, component: str, now_us: float) -> float:
        """Closed intervals plus the currently open one (if any)."""
        total = self.degraded_closed_us.get(component, 0.0)
        entered = self.degraded_open_since_us.get(component)
        if entered is not None:
            total += now_us - entered
        return total

    def components(self) -> List[str]:
        """Every component the supervisor ever touched, sorted."""
        names = set(self.rung_attempts) | set(self.storms) \
            | set(self.quarantine_us) | set(self.degraded_calls) \
            | set(self.degrade_entries) | set(self.fail_stops) \
            | {o.component for o in self.outcomes}
        return sorted(names)

    def rung_total(self, rung: str) -> int:
        return sum(per_comp.get(rung, 0)
                   for per_comp in self.rung_attempts.values())

    def rows(self, now_us: float) -> List[List[Any]]:
        """Per-component report rows (see :data:`ROW_HEADERS`)."""
        rows: List[List[Any]] = []
        for name in self.components():
            attempts = self.rung_attempts.get(name, {})
            rungs = " ".join(f"{key}:{count}"
                             for key, count in sorted(attempts.items())) \
                or "-"
            mttr = self.mttr_summary(name)
            mttr_text = (f"{mttr.mean / 1e3:.2f}ms "
                         f"(p95 {mttr.p95 / 1e3:.2f})") if mttr else "-"
            rows.append([
                name,
                len([o for o in self.outcomes if o.component == name]),
                mttr_text,
                rungs,
                self.storms.get(name, 0),
                f"{self.quarantine_us.get(name, 0.0) / 1e3:.1f}ms",
                self.degraded_calls.get(name, 0),
                f"{self.time_in_degraded_us(name, now_us) / 1e3:.1f}ms",
            ])
        return rows

    def merged_with(self, other: "RecoveryTelemetry") -> \
            "RecoveryTelemetry":
        """Order-independent fold of two telemetry sets (for sharded
        experiments; open degraded intervals must be closed first)."""
        out = RecoveryTelemetry()
        for src in (self, other):
            for comp, per_comp in src.rung_attempts.items():
                dst = out.rung_attempts.setdefault(comp, {})
                for key, count in per_comp.items():
                    dst[key] = dst.get(key, 0) + count
            out.outcomes.extend(src.outcomes)
            for attr in ("storms", "quarantine_us", "degraded_calls",
                         "degrade_entries", "degraded_closed_us",
                         "fail_stops"):
                dst_map = getattr(out, attr)
                for comp, value in getattr(src, attr).items():
                    dst_map[comp] = dst_map.get(comp, 0) + value
            out.mttr_hist = out.mttr_hist.merged_with(src.mttr_hist)
            out.track_mttr_hist = \
                out.track_mttr_hist.merged_with(src.track_mttr_hist)
            out.plans += src.plans
            out.plan_tracks += src.plan_tracks
            out.plan_serial_us += src.plan_serial_us
            out.plan_planned_us += src.plan_planned_us
            out.root_reboots += src.root_reboots
            out.root_downtime_us += src.root_downtime_us
            out.root_slots_dropped += src.root_slots_dropped
            out.root_plans_dropped += src.root_plans_dropped
            out.root_tombstones_dropped += src.root_tombstones_dropped
        return out


#: column headers matching :meth:`RecoveryTelemetry.rows`
ROW_HEADERS = ["component", "recoveries", "MTTR", "rung attempts",
               "storms", "quarantine", "degraded calls",
               "time degraded"]
