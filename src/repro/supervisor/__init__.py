"""Recovery supervision: escalation, budgets, storms and degradation.

The paper's recovery primitive (reboot → restore → replay → retry,
§V-E) becomes availability only with *policy* around it — the
microreboot lineage's recursive scope-widening, retry limits and
degraded operation.  This package is that policy layer:

* :mod:`.ladder` — the pluggable escalation ladder, one strategy
  object per rung (replay-retry → fresh restart → variant swap →
  dependency-scoped widening → rejuvenate-all → degrade);
* :mod:`.budget` — per-component retry budgets with exponential
  virtual-time backoff, and the sliding-window crash-storm detector;
* :mod:`.supervisor` — :class:`RecoverySupervisor`, which the VampOS
  dispatcher delegates every in-flight failure to;
* :mod:`.telemetry` — ladder-rung counters, MTTR distributions and
  time-in-degraded accounting for the experiment reports.
"""

from .budget import CrashStormDetector, RetryBudget
from .ladder import (
    DEFAULT_LADDER,
    DegradeRung,
    FreshRestartRung,
    LadderRung,
    RejuvenateAllRung,
    RejuvenateRootRung,
    ReplayRetryRung,
    ScopeWidenRung,
    VariantSwapRung,
    dependency_rings,
)
from .supervisor import DEGRADED_ERRNO, DegradedState, RecoverySupervisor
from .telemetry import (
    PHASE_ROW_HEADERS,
    PHASES,
    ROW_HEADERS,
    PhaseClock,
    RecoveryOutcome,
    RecoveryTelemetry,
    phase_sum,
)

__all__ = [
    "CrashStormDetector",
    "RetryBudget",
    "DEFAULT_LADDER",
    "DegradeRung",
    "FreshRestartRung",
    "LadderRung",
    "RejuvenateAllRung",
    "RejuvenateRootRung",
    "ReplayRetryRung",
    "ScopeWidenRung",
    "VariantSwapRung",
    "dependency_rings",
    "DEGRADED_ERRNO",
    "DegradedState",
    "RecoverySupervisor",
    "PHASE_ROW_HEADERS",
    "PHASES",
    "PhaseClock",
    "ROW_HEADERS",
    "RecoveryOutcome",
    "RecoveryTelemetry",
    "phase_sum",
]
