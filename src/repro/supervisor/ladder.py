"""The escalation ladder: recovery remedies as strategy objects.

Each rung is one remedy the :class:`~repro.supervisor.supervisor.
RecoverySupervisor` may try for a failed component, ordered from the
cheapest and least disruptive (the paper's own reboot-replay-retry,
§V-E) to the most (a microreboot-style sweep of every rebootable
component, Candea et al. [8]), ending in graceful degradation.  The
implicit final rung — fail-stop — lives in the supervisor itself.

A rung contributes:

* ``applies(supervisor, name, failure)`` — whether the rung is armed
  for this component under the kernel's configuration *and* relevant to
  the failure at hand (the fresh-restart rung, for instance, only makes
  sense when the previous remedy died inside log replay);
* ``plans(supervisor, name)`` — one or more concrete attempts.  Most
  rungs have a single plan; dependency-scoped widening yields one plan
  per BFS ring so each widening step is charged and counted on its own;
* ``cost_attr`` — the :class:`~repro.sim.costs.CostModel` field holding
  the rung's own virtual-time price, charged per attempted plan, so
  experiments stay ledger-deterministic whatever the ladder does.

The default ladder order (replay-retry → fresh restart → variant swap →
scope widening → rejuvenate-all → rejuvenate-root → degrade) reproduces
the legacy inline ladder exactly when only the legacy knobs
(``escalation_enabled``, registered variants) are armed; the
rejuvenate-root rung additionally requires the root itself to be
implicated (pending root panic or kernel-side wear), so it never fires
on a purely component-level failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, List

from ..unikernel.errors import ComponentFailure, RecoveryFailed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .supervisor import RecoverySupervisor

#: a concrete recovery attempt: executes the remedy (reboots, swaps,
#: sweeps) and returns nothing; the supervisor retries the failed call
#: afterwards
Plan = Callable[["RecoverySupervisor", str, BaseException], None]


class LadderRung:
    """Base strategy object for one escalation-ladder rung."""

    #: stable identifier used in telemetry counters and trace events
    key: str = "rung"
    #: CostModel attribute naming this rung's per-attempt price
    cost_attr: str = "rung_replay_retry"
    #: a degrading rung quarantines the component instead of retrying
    degrades: bool = False

    def applies(self, supervisor: "RecoverySupervisor", name: str,
                failure: BaseException) -> bool:
        raise NotImplementedError

    def plans(self, supervisor: "RecoverySupervisor",
              name: str) -> Iterator[Plan]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key!r}>"


class ReplayRetryRung(LadderRung):
    """The paper's own recovery (§V-E): teardown → checkpoint restore →
    encapsulated log replay → retry.  Always armed — it *is* VampOS."""

    key = "replay-retry"
    cost_attr = "rung_replay_retry"

    def applies(self, supervisor, name, failure) -> bool:
        return True

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            # Keep the legacy reboot reason ("Panic"/"HangDetected") so
            # RebootRecord consumers see the same labels as before.
            reason = type(failure).__name__
            if not isinstance(failure, ComponentFailure):
                reason = "retry"
            sup.kernel.reboot_component(comp_name, reason=reason)
        yield plan


class FreshRestartRung(LadderRung):
    """Restart from the post-boot checkpoint *without* replaying the
    log.  Only relevant when the previous remedy died inside the replay
    itself (a :class:`RecoveryFailed`): skipping the replay sidesteps
    the re-triggering entry at the price of the logged state."""

    key = "fresh-restart"
    cost_attr = "rung_fresh_restart"

    def applies(self, supervisor, name, failure) -> bool:
        return (supervisor.kernel.config.fresh_restart_enabled
                and isinstance(failure, RecoveryFailed))

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            sup.kernel.reboot_component(comp_name, reason="fresh-restart",
                                        replay=False)
        yield plan


class VariantSwapRung(LadderRung):
    """Swap in a registered multi-version variant (§VIII)."""

    key = "variant-swap"
    cost_attr = "rung_variant_swap"

    def applies(self, supervisor, name, failure) -> bool:
        return name in supervisor.kernel.variants

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            sup.kernel.swap_in_variant(comp_name,
                                       reason="deterministic bug")
        yield plan


class ScopeWidenRung(LadderRung):
    """Dependency-scoped widening: reboot BFS rings of the failed
    component's declared callers/callees, then the component itself.

    This is the recursive-microreboot middle ground between a single
    component reboot and ``rejuvenate_all``: §II-B's root-cause-in-
    another-component faults are usually one or two dependency hops
    away, so a couple of rings recover them without sweeping the whole
    image.  One plan per ring — each widening step has its own charge
    and telemetry count."""

    key = "scope-widen"
    cost_attr = "rung_scope_widen"

    def applies(self, supervisor, name, failure) -> bool:
        return supervisor.kernel.config.scope_widening_enabled

    def plans(self, supervisor, name):
        for ring in dependency_rings(supervisor.kernel, name):
            def plan(sup, comp_name, failure, ring=tuple(ring)):
                kernel = sup.kernel
                sup.sim.emit("supervisor", "widen", component=comp_name,
                             ring=list(ring))
                # Ring members are one representative per scheduling
                # unit, so their reboots can overlap as parallel
                # recovery tracks when the planner is armed (the
                # serial loop runs bit-identically otherwise).
                kernel.reboot_components(list(ring),
                                         reason="scope-widen")
                rebooted_units = {kernel.scheduler.unit_of(member)
                                  for member in ring}
                # Finish with the failed component itself (its state is
                # FAILED after the retry), unless a ring member's merge
                # group already covered it.
                if kernel.scheduler.unit_of(comp_name) not in rebooted_units:
                    kernel.reboot_component(comp_name, reason="scope-widen")
            yield plan


class RejuvenateAllRung(LadderRung):
    """The legacy escalation: reboot every rebootable component."""

    key = "rejuvenate-all"
    cost_attr = "rung_rejuvenate_all"

    def applies(self, supervisor, name, failure) -> bool:
        return supervisor.kernel.config.escalation_enabled

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            # The legacy event, kept verbatim for trace consumers.
            sup.sim.emit("reboot", "escalation", component=comp_name)
            sup.kernel.rejuvenate_all()
        yield plan


class RejuvenateRootRung(LadderRung):
    """Microreboot the *kernel itself* under the live components
    (ReHype's recover-the-hypervisor move).  Applies only when root
    rejuvenation is armed *and* the root is actually implicated — a
    pending root panic or accumulated kernel-side wear — so the rung is
    invisible to every component-only failure.  The failed component is
    rebooted afterwards: the root reboot heals kernel-side damage, not
    the component's own state."""

    key = "rejuvenate-root"
    cost_attr = "rung_rejuvenate_root"

    def applies(self, supervisor, name, failure) -> bool:
        kernel = supervisor.kernel
        return (kernel.config.root_rejuvenation_enabled
                and (getattr(kernel, "root_panicked", None) is not None
                     or kernel.root_wear.is_worn()))

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            sup.kernel.rejuvenate_root(reason=f"ladder: {comp_name}")
            sup.kernel.reboot_component(comp_name,
                                        reason="rejuvenate-root")
        yield plan


class DegradeRung(LadderRung):
    """Graceful degradation: quarantine the component.  Its interface
    calls return an ENODEV-style error instead of panicking callers, so
    the kernel keeps serving everything that does not need it."""

    key = "degrade"
    cost_attr = "rung_degrade"
    degrades = True

    def applies(self, supervisor, name, failure) -> bool:
        return supervisor.kernel.config.degraded_mode_enabled

    def plans(self, supervisor, name):
        def plan(sup, comp_name, failure):
            sup.enter_degraded(comp_name,
                               reason=f"ladder exhausted: {failure}")
        yield plan


#: the default ladder, in escalation order (fail-stop is implicit)
DEFAULT_LADDER: List[LadderRung] = [
    ReplayRetryRung(),
    FreshRestartRung(),
    VariantSwapRung(),
    ScopeWidenRung(),
    RejuvenateAllRung(),
    RejuvenateRootRung(),
    DegradeRung(),
]


def dependency_rings(kernel, name: str) -> List[List[str]]:
    """BFS rings over the undirected dependency graph around ``name``.

    Ring *d* holds one representative (rebootable, non-degraded)
    component per scheduling unit first reached at distance *d*.
    Unrebootable components (VIRTIO) are traversed — they connect the
    file and network stacks — but never rebooted; degraded components
    stay quarantined.  Empty rings are dropped.
    """
    graph = kernel.image.dependency_graph()
    undirected = {comp: set() for comp in graph}
    for src, deps in graph.items():
        for dep in deps:
            undirected[src].add(dep)
            undirected.setdefault(dep, set()).add(src)
    unit_of = kernel.scheduler.unit_of
    supervisor = getattr(kernel, "supervisor", None)
    seen_units = {unit_of(name)}
    visited = {name}
    frontier = [name]
    rings: List[List[str]] = []
    while frontier:
        next_frontier: List[str] = []
        ring: List[str] = []
        for node in frontier:
            for neighbour in sorted(undirected.get(node, ())):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                next_frontier.append(neighbour)
                unit = unit_of(neighbour)
                if unit in seen_units:
                    continue
                seen_units.add(unit)
                comp = kernel.component(neighbour)
                degraded = (supervisor is not None
                            and supervisor.is_degraded(neighbour))
                if comp.REBOOTABLE and not degraded:
                    ring.append(neighbour)
        if ring:
            rings.append(ring)
        frontier = next_frontier
    return rings
