"""Retry budgets with exponential backoff, and crash-storm detection.

Both mechanisms work in *virtual* time so they are deterministic under
the simulation contract: a component that keeps failing first burns its
per-window retry budget, then every further recovery attempt is
preceded by a geometrically growing quarantine charged to the clock;
independently, a sliding window over the failure detector's records
flags crash storms (flapping) so the supervisor can stop walking the
ladder and degrade the component instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from ..core.detector import FailureDetector


@dataclass
class RetryBudget:
    """Per-component recovery budget over a sliding virtual-time window.

    The first ``budget`` recoveries inside ``window_us`` are free; the
    *n*-th over-budget recovery waits ``base_us * factor**(n-1)``
    (capped) before the supervisor touches the component again.
    """

    budget: int
    window_us: float
    base_us: float
    factor: float
    cap_us: float
    #: virtual times of recent recovery attempts, pruned to the window
    #: (attempts arrive in time order, so expiry pops from the left)
    attempts_us: Deque[float] = field(default_factory=deque)

    def register(self, now_us: float) -> float:
        """Record an attempt at ``now_us``; return the quarantine delay
        (0 while inside the budget)."""
        cutoff = now_us - self.window_us
        attempts = self.attempts_us
        while attempts and attempts[0] < cutoff:
            attempts.popleft()
        attempts.append(now_us)
        overrun = len(attempts) - self.budget
        if overrun <= 0:
            return 0.0
        return min(self.cap_us, self.base_us * self.factor ** (overrun - 1))


@dataclass
class CrashStormDetector:
    """Flags a component as flapping when its failure rate spikes.

    Reads the shared :class:`FailureDetector` history rather than
    keeping its own: every failure the supervisor handles is already
    recorded there, so the storm window sees panics, hangs and
    heartbeat sweeps alike.
    """

    threshold: int
    window_us: float

    def tripped(self, detector: FailureDetector, component: str,
                now_us: float) -> bool:
        return detector.recent_failures(
            component, self.window_us, now_us) >= self.threshold
