"""The four applications of §VI: SQLite, Nginx, Redis and Echo."""

from .base import KernelMode, ServerApp, UnikernelApp
from .echo import EchoServer
from .libc import Libc
from .nginx import DEFAULT_PAGE, MiniNginx
from .redis import AOF_PATH, MiniRedis
from .sqlite import DB_PATH, MiniSQLite, SqlError

__all__ = [
    "KernelMode",
    "ServerApp",
    "UnikernelApp",
    "EchoServer",
    "Libc",
    "DEFAULT_PAGE",
    "MiniNginx",
    "AOF_PATH",
    "MiniRedis",
    "DB_PATH",
    "MiniSQLite",
    "SqlError",
]
