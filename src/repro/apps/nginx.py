"""MiniNginx — a static-file web server (§VI).

Components: PROCESS, SYSINFO, USER, NETDEV, TIMER, VFS, 9PFS, LWIP,
VIRTIO — nine components; the VampOS build uses 12 MPK tags
(application + nine components + message domain + thread scheduler).

Implements enough of HTTP/1.0-1.1 for the paper's workloads: GET with
keep-alive or ``Connection: close``, 200/404 responses with
Content-Length, and a docroot served from the 9P share.  Every request
exercises the full file path (VFS → 9PFS → VIRTIO → host share), which
is what makes Nginx's component set the Fig. 6 reboot-time workload.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..unikernel.errors import SyscallError
from .base import ServerApp

def _page_of(size: int) -> bytes:
    """An html page padded to exactly ``size`` bytes."""
    skeleton = (b"<html><head><title>unikraft test page</title></head>"
                b"<body><h1>It works!</h1><p>%s</p></body></html>\n")
    padding = size - len(skeleton) + len(b"%s")
    if padding < 0:
        raise ValueError(f"page size {size} too small for the skeleton")
    return skeleton % (b"x" * padding)


#: the 180-byte html file of the Fig. 7 workload
DEFAULT_PAGE = _page_of(180)


class MiniNginx(ServerApp):
    NAME = "nginx"
    COMPONENTS = ("PROCESS", "SYSINFO", "USER", "NETDEV", "TIMER", "VFS",
                  "9PFS", "LWIP", "VIRTIO")
    PORT = 80
    DOCROOT = "/srv"

    def __init__(self, *args, **kwargs) -> None:
        self.responses_200 = 0
        self.responses_404 = 0
        super().__init__(*args, **kwargs)

    def prepare_host(self) -> None:
        if not self.share.exists(self.DOCROOT):
            self.share.makedirs(self.DOCROOT)
        if not self.share.exists(f"{self.DOCROOT}/index.html"):
            self.share.create(f"{self.DOCROOT}/index.html", DEFAULT_PAGE)

    def setup(self) -> None:
        self.libc.mount("/", "/")
        super().setup()

    def add_page(self, name: str, content: bytes) -> None:
        """Publish a page into the docroot (host-side helper)."""
        path = f"{self.DOCROOT}/{name}"
        if self.share.exists(path):
            self.share.truncate(path)
            self.share.write(path, 0, content)
        else:
            self.share.create(path, content)

    # --- HTTP ------------------------------------------------------------------------

    def handle_data(self, data: bytes) -> Tuple[int, bytes, bool]:
        end = data.find(b"\r\n\r\n")
        if end < 0:
            return (0, b"", False)
        consumed = end + 4
        head = data[:end].decode("ascii", errors="replace")
        lines = head.split("\r\n")
        request_line = lines[0].split()
        headers = _parse_headers(lines[1:])
        close_after = headers.get("connection", "").lower() == "close"
        if len(request_line) != 3 or request_line[0] != "GET":
            return (consumed,
                    _response(400, b"bad request\n", close_after), True)
        path = request_line[1]
        body = self._serve_file(path)
        if body is None:
            self.responses_404 += 1
            return (consumed, _response(404, b"not found\n", close_after),
                    close_after)
        self.responses_200 += 1
        return (consumed, _response(200, body, close_after), close_after)

    def _serve_file(self, url_path: str) -> Optional[bytes]:
        if url_path.endswith("/"):
            url_path += "index.html"
        fs_path = f"{self.DOCROOT}{url_path}"
        try:
            fd = self.libc.open(fs_path, "r")
        except SyscallError:
            return None
        try:
            chunks = []
            while True:
                chunk = self.libc.read(fd, 4096)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        finally:
            self.libc.close(fd)


def _parse_headers(lines) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return headers


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found"}


def _response(status: int, body: bytes, close_after: bool) -> bytes:
    connection = "close" if close_after else "keep-alive"
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            f"Server: mini-nginx\r\n\r\n")
    return head.encode("ascii") + body
