"""MiniSQLite — a file-backed relational store (§VI).

Components: PROCESS, SYSINFO, USER, TIMER, VFS, 9PFS, VIRTIO — seven
components; the VampOS build uses ten MPK tags (application + seven
components + message domain + thread scheduler).  No network stack:
SQLite is the one local workload, driven through its query API.

The engine supports the SQL subset the paper's workload needs —
``CREATE TABLE``, ``INSERT``, ``SELECT`` (with ``WHERE col = value``),
``UPDATE``, ``DELETE``, ``BEGIN``/``COMMIT`` — and persists through the
unikernel's file path the way SQLite does: every committed write goes
to the database file via ``pwrite`` and is made durable with a
rollback-journal write plus ``fsync`` per transaction.  The on-disk
format is a row append-log per table; boot recovers the tables by
scanning it, so data survives full reboots (it lives on the host
share).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from ..unikernel.errors import SyscallError, UnikernelError
from .base import UnikernelApp

DB_DIR = "/sqlite"
DB_PATH = f"{DB_DIR}/database.db"
JOURNAL_PATH = f"{DB_DIR}/database.db-journal"


class SqlError(UnikernelError):
    """Bad SQL or constraint violation."""


_CREATE_RE = re.compile(
    r"^\s*CREATE\s+TABLE\s+(\w+)\s*\(([^)]*)\)\s*;?\s*$", re.IGNORECASE)
_INSERT_RE = re.compile(
    r"^\s*INSERT\s+INTO\s+(\w+)\s+VALUES\s*\((.*)\)\s*;?\s*$",
    re.IGNORECASE)
_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(\*|[\w,\s]+)\s+FROM\s+(\w+)"
    r"(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*;?\s*$", re.IGNORECASE)
_DELETE_RE = re.compile(
    r"^\s*DELETE\s+FROM\s+(\w+)(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*;?\s*$",
    re.IGNORECASE)
_UPDATE_RE = re.compile(
    r"^\s*UPDATE\s+(\w+)\s+SET\s+(\w+)\s*=\s*(.+?)"
    r"(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*;?\s*$", re.IGNORECASE)
_TXN_RE = re.compile(r"^\s*(BEGIN|COMMIT|ROLLBACK)\s*;?\s*$",
                     re.IGNORECASE)


def _parse_literal(text: str) -> Any:
    text = text.strip()
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1].replace("''", "'")
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if re.fullmatch(r"-?\d*\.\d+", text):
        return float(text)
    raise SqlError(f"bad literal: {text!r}")


def _encode_value(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


class MiniSQLite(UnikernelApp):
    NAME = "sqlite"
    COMPONENTS = ("PROCESS", "SYSINFO", "USER", "TIMER", "VFS", "9PFS",
                  "VIRTIO")

    def __init__(self, *args, synchronous: bool = True, **kwargs) -> None:
        #: table -> column names
        self._schemas: Dict[str, List[str]] = {}
        #: table -> list of row tuples
        self._tables: Dict[str, List[Tuple[Any, ...]]] = {}
        self._db_fd: Optional[int] = None
        self._in_txn = False
        self._txn_buffer: List[str] = []
        self.synchronous = synchronous
        self.statements_executed = 0
        super().__init__(*args, **kwargs)

    def prepare_host(self) -> None:
        if not self.share.exists(DB_DIR):
            self.share.makedirs(DB_DIR)
        if not self.share.exists(DB_PATH):
            self.share.create(DB_PATH)

    def setup(self) -> None:
        self.libc.mount("/", "/")
        self._db_fd = self.libc.open(DB_PATH, "rwa")
        self._recover_from_file()

    def reset_state(self) -> None:
        self._schemas = {}
        self._tables = {}
        self._db_fd = None
        self._in_txn = False
        self._txn_buffer = []

    # --- durability ----------------------------------------------------------------------

    def _recover_from_file(self) -> None:
        """Rebuild the in-memory tables from the on-disk append log,
        then complete any statement left in the write-ahead journal by
        a crash (power-cut recovery)."""
        self.libc.lseek(self._db_fd, 0, "set")
        chunks = []
        while True:
            chunk = self.libc.read(self._db_fd, 1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
        self.libc.lseek(self._db_fd, 0, "end")
        lines = [line for line in
                 b"".join(chunks).decode("utf-8").splitlines()
                 if line.strip()]
        for line in lines:
            self._apply(line, durable=False)
        self._replay_journal(lines[-1] if lines else None)

    def _replay_journal(self, last_db_line: Optional[str]) -> None:
        """A non-empty journal means a crash interrupted `_persist`.

        If the journalled statement already made it to the database
        (crash landed between the db fsync and the journal reset), it
        must not be applied twice; the single-statement journal makes
        the tail comparison sufficient.
        """
        try:
            jfd = self.libc.open(JOURNAL_PATH, "r")
        except SyscallError:
            return
        try:
            content = self.libc.read(jfd, 1 << 16).decode("utf-8")
        finally:
            self.libc.close(jfd)
        statement = content.strip()
        if not statement:
            return
        if statement != (last_db_line or "").strip():
            self._apply(statement, durable=False)
            record = (statement + "\n").encode("utf-8")
            self.libc.write(self._db_fd, record)
            self.libc.fsync(self._db_fd)
            self.sim.emit("sqlite", "journal_recovered",
                          statement=statement[:60])
        self._reset_journal()

    def _persist(self, statement: str) -> None:
        record = (statement.strip() + "\n").encode("utf-8")
        if self.synchronous:
            # Write-ahead journal: journal + fsync, then the database
            # + fsync, then reset the journal — a crash at any point
            # leaves a recoverable state.
            jfd = self._open_journal()
            self.libc.write(jfd, record)
            self.libc.fsync(jfd)
            self.libc.close(jfd)
        self.libc.write(self._db_fd, record)
        if self.synchronous:
            self.libc.fsync(self._db_fd)
            self._reset_journal()

    def _open_journal(self) -> int:
        return self.libc.open(JOURNAL_PATH, "rwct")

    def _reset_journal(self) -> None:
        jfd = self.libc.open(JOURNAL_PATH, "rwct")
        self.libc.close(jfd)

    # --- the SQL surface ----------------------------------------------------------------------

    def execute(self, sql: str) -> List[Tuple[Any, ...]]:
        """Execute one statement; SELECTs return rows, others []."""
        self.statements_executed += 1
        txn = _TXN_RE.match(sql)
        if txn:
            return self._execute_txn_control(txn.group(1).upper())
        if self._in_txn and not sql.lstrip().upper().startswith("SELECT"):
            self._txn_buffer.append(sql)
            return self._apply(sql, durable=False)
        return self._apply(sql, durable=True)

    def _execute_txn_control(self, verb: str) -> List[Tuple[Any, ...]]:
        if verb == "BEGIN":
            if self._in_txn:
                raise SqlError("nested BEGIN")
            self._in_txn = True
            self._txn_buffer = []
        elif verb == "COMMIT":
            if not self._in_txn:
                raise SqlError("COMMIT outside a transaction")
            for statement in self._txn_buffer:
                self._persist(statement)
            self._in_txn = False
            self._txn_buffer = []
        elif verb == "ROLLBACK":
            if not self._in_txn:
                raise SqlError("ROLLBACK outside a transaction")
            # Buffered statements were applied in memory; rebuild from
            # the durable log to discard them.
            self._schemas, self._tables = {}, {}
            self._recover_from_file()
            self._in_txn = False
            self._txn_buffer = []
        return []

    def _apply(self, sql: str, durable: bool) -> List[Tuple[Any, ...]]:
        match = _CREATE_RE.match(sql)
        if match:
            return self._do_create(match, sql, durable)
        match = _INSERT_RE.match(sql)
        if match:
            return self._do_insert(match, sql, durable)
        match = _SELECT_RE.match(sql)
        if match:
            return self._do_select(match)
        match = _DELETE_RE.match(sql)
        if match:
            return self._do_delete(match, sql, durable)
        match = _UPDATE_RE.match(sql)
        if match:
            return self._do_update(match, sql, durable)
        raise SqlError(f"unsupported SQL: {sql!r}")

    def _do_create(self, match: "re.Match[str]", sql: str,
                   durable: bool) -> List[Tuple[Any, ...]]:
        table = match.group(1).lower()
        columns = [c.strip().split()[0].lower()
                   for c in match.group(2).split(",") if c.strip()]
        if not columns:
            raise SqlError("a table needs at least one column")
        if table in self._schemas:
            raise SqlError(f"table {table!r} already exists")
        self._schemas[table] = columns
        self._tables[table] = []
        if durable:
            self._persist(sql)
        return []

    def _table(self, name: str) -> List[Tuple[Any, ...]]:
        table = self._tables.get(name.lower())
        if table is None:
            raise SqlError(f"no such table: {name}")
        return table

    def _do_insert(self, match: "re.Match[str]", sql: str,
                   durable: bool) -> List[Tuple[Any, ...]]:
        table_name = match.group(1).lower()
        rows = self._table(table_name)
        values = tuple(_parse_literal(v)
                       for v in _split_values(match.group(2)))
        expected = len(self._schemas[table_name])
        if len(values) != expected:
            raise SqlError(
                f"table {table_name!r} has {expected} columns, "
                f"got {len(values)} values")
        rows.append(values)
        if durable:
            self._persist(sql)
        return []

    def _do_select(self, match: "re.Match[str]") -> List[Tuple[Any, ...]]:
        projection, table_name = match.group(1), match.group(2).lower()
        rows = self._table(table_name)
        columns = self._schemas[table_name]
        selected = self._filter(rows, columns, match.group(3),
                                match.group(4))
        if projection.strip() == "*":
            return list(selected)
        wanted = [c.strip().lower() for c in projection.split(",")]
        idx = [self._col_index(columns, c) for c in wanted]
        return [tuple(row[i] for i in idx) for row in selected]

    def _do_delete(self, match: "re.Match[str]", sql: str,
                   durable: bool) -> List[Tuple[Any, ...]]:
        table_name = match.group(1).lower()
        rows = self._table(table_name)
        columns = self._schemas[table_name]
        doomed = set(map(id, self._filter(rows, columns, match.group(2),
                                          match.group(3))))
        self._tables[table_name] = [r for r in rows if id(r) not in doomed]
        if durable:
            self._persist(sql)
        return []

    def _do_update(self, match: "re.Match[str]", sql: str,
                   durable: bool) -> List[Tuple[Any, ...]]:
        table_name = match.group(1).lower()
        rows = self._table(table_name)
        columns = self._schemas[table_name]
        set_idx = self._col_index(columns, match.group(2).lower())
        new_value = _parse_literal(match.group(3))
        targets = set(map(id, self._filter(rows, columns, match.group(4),
                                           match.group(5))))
        updated = []
        for row in rows:
            if id(row) in targets:
                row = row[:set_idx] + (new_value,) + row[set_idx + 1:]
            updated.append(row)
        self._tables[table_name] = updated
        if durable:
            self._persist(sql)
        return []

    def _filter(self, rows: List[Tuple[Any, ...]], columns: List[str],
                where_col: Optional[str],
                where_val: Optional[str]) -> List[Tuple[Any, ...]]:
        if where_col is None:
            return list(rows)
        idx = self._col_index(columns, where_col.lower())
        value = _parse_literal(where_val or "")
        return [row for row in rows if row[idx] == value]

    @staticmethod
    def _col_index(columns: List[str], name: str) -> int:
        try:
            return columns.index(name)
        except ValueError:
            raise SqlError(f"no such column: {name}") from None

    # --- introspection ----------------------------------------------------------------------------

    def tables(self) -> List[str]:
        return sorted(self._schemas)

    def row_count(self, table: str) -> int:
        return len(self._table(table))

    def app_state_bytes(self) -> int:
        total = 0
        for rows in self._tables.values():
            for row in rows:
                total += 48 + sum(
                    len(v) if isinstance(v, str) else 8 for v in row)
        return total


def _split_values(raw: str) -> List[str]:
    """Split a VALUES list on commas outside string literals."""
    parts: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "'":
            if in_string and i + 1 < len(raw) and raw[i + 1] == "'":
                current.append("''")
                i += 2
                continue
            in_string = not in_string
            current.append(ch)
        elif ch == "," and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if current or parts:
        parts.append("".join(current))
    if in_string:
        raise SqlError("unterminated string literal")
    return [p for p in (part.strip() for part in parts) if p]
