"""MiniRedis — an in-memory key-value store (§VI).

Components: PROCESS, SYSINFO, USER, NETDEV, TIMER, VFS, 9PFS, LWIP,
VIRTIO — nine components, 12 MPK tags under VampOS.

Protocol: a newline-framed command protocol in the spirit of RESP
inline commands — ``SET key value``, ``GET key``, ``DEL key``,
``DBSIZE``, ``PING`` — with ``+OK``/``$value``/``$-1`` replies.

**AOF.**  The paper turns on Redis's Append-Only-File backup under
vanilla Unikraft "to make the unikernel layer rebootable": every SET is
appended to storage and fsync'd so the KVs survive a full reboot.  That
synchronous storage access is 63.5 % of Unikraft-Redis's execution time
(§VII-C) — and is unnecessary under VampOS, whose component reboots
preserve application memory.  ``aof="always"`` reproduces the vanilla
configuration, ``aof="off"`` the VampOS one; the full-reboot recovery
replays the AOF (the long outage of Fig. 8).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..unikernel.errors import SyscallError
from .base import KernelMode, ServerApp

AOF_PATH = "/redis/appendonly.aof"
DUMP_PATH = "/redis/dump.rdb"


class MiniRedis(ServerApp):
    NAME = "redis"
    COMPONENTS = ("PROCESS", "SYSINFO", "USER", "NETDEV", "TIMER", "VFS",
                  "9PFS", "LWIP", "VIRTIO")
    PORT = 6379

    def __init__(self, *args, aof: str = "off", **kwargs) -> None:
        if aof not in ("off", "always"):
            raise ValueError(f"aof mode {aof!r}; use 'off' or 'always'")
        self.aof = aof
        self._data: Dict[str, bytes] = {}
        self._aof_fd: Optional[int] = None
        self.sets = 0
        self.gets = 0
        super().__init__(*args, **kwargs)

    def prepare_host(self) -> None:
        if not self.share.exists("/redis"):
            self.share.makedirs("/redis")
        if not self.share.exists(AOF_PATH):
            self.share.create(AOF_PATH)

    def setup(self) -> None:
        self.libc.mount("/", "/")
        super().setup()
        if self.aof == "always":
            self._aof_fd = self.libc.open(AOF_PATH, "rwa")
        if not self._data and self.share.size(AOF_PATH) > 0:
            self._load_aof()

    def reset_state(self) -> None:
        super().reset_state()
        # A full reboot wiped the KVs; only the AOF (host state) remains.
        self._data = {}
        self._aof_fd = None

    # --- AOF ------------------------------------------------------------------------------

    def _append_aof(self, key: str, value: bytes) -> None:
        if self._aof_fd is None:
            return
        record = b"SET %s %s\n" % (key.encode(), value)
        self.libc.write(self._aof_fd, record)
        # "preserves volatile KVs into storage synchronously via fsync()"
        self.libc.fsync(self._aof_fd)

    def _load_aof(self) -> int:
        """Replay the append-only file (the full-reboot restoration)."""
        try:
            fd = self.libc.open(AOF_PATH, "r")
        except SyscallError:
            return 0
        try:
            chunks = []
            while True:
                chunk = self.libc.read(fd, 1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            self.libc.close(fd)
        loaded = 0
        for line in b"".join(chunks).split(b"\n"):
            parts = line.split(b" ", 2)
            if len(parts) == 3 and parts[0] == b"SET":
                self._data[parts[1].decode()] = parts[2]
                loaded += 1
        self.sim.emit("redis", "aof_loaded", keys=loaded)
        return loaded

    # --- protocol ----------------------------------------------------------------------------

    def handle_data(self, data: bytes) -> Tuple[int, bytes, bool]:
        newline = data.find(b"\n")
        if newline < 0:
            return (0, b"", False)
        line = data[:newline].rstrip(b"\r")
        consumed = newline + 1
        return (consumed, self._execute(line), False)

    def _execute(self, line: bytes) -> bytes:
        parts = line.split(b" ", 2)
        command = parts[0].upper() if parts else b""
        if command == b"PING":
            return b"+PONG\n"
        if command == b"SET" and len(parts) == 3:
            key = parts[1].decode()
            self._data[key] = parts[2]
            self.sets += 1
            self._append_aof(key, parts[2])
            return b"+OK\n"
        if command == b"GET" and len(parts) >= 2:
            self.gets += 1
            value = self._data.get(parts[1].decode())
            if value is None:
                return b"$-1\n"
            return b"$" + value + b"\n"
        if command == b"DEL" and len(parts) >= 2:
            existed = self._data.pop(parts[1].decode(), None)
            return b":1\n" if existed is not None else b":0\n"
        if command == b"DBSIZE":
            return b":%d\n" % len(self._data)
        return b"-ERR unknown command\n"

    # --- graceful termination (§VIII) --------------------------------------------------------

    def enable_fail_stop_dump(self) -> None:
        """Register the §VIII graceful-termination hook: when VampOS
        recovery fails and the app is about to fail-stop, dump the
        current in-memory KVs to storage through whatever components
        are still undamaged ("storing the current in-memory KVs in
        storage just before a fail-stop is more helpful ... than
        eliminating all the KVs")."""
        vamp = self.vampos
        if vamp is None:
            raise RuntimeError("fail-stop dumps need the VampOS kernel")
        vamp.on_fail_stop(self.dump_to_disk)

    def dump_to_disk(self) -> int:
        """Best-effort dump of all KVs to ``/redis/dump.rdb``."""
        fd = self.libc.open(DUMP_PATH, "rwct")
        dumped = 0
        try:
            for key, value in self._data.items():
                self.libc.write(fd, b"SET %s %s\n" % (key.encode(),
                                                      value))
                dumped += 1
            self.libc.fsync(fd)
        finally:
            self.libc.close(fd)
        self.sim.emit("redis", "dumped", keys=dumped)
        return dumped

    def load_dump(self) -> int:
        """Load a previous fail-stop dump (after a restart)."""
        try:
            fd = self.libc.open(DUMP_PATH, "r")
        except SyscallError:
            return 0
        try:
            chunks = []
            while True:
                chunk = self.libc.read(fd, 1 << 16)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            self.libc.close(fd)
        loaded = 0
        for line in b"".join(chunks).split(b"\n"):
            parts = line.split(b" ", 2)
            if len(parts) == 3 and parts[0] == b"SET":
                self._data[parts[1].decode()] = parts[2]
                loaded += 1
        return loaded

    # --- direct (in-process) API for warm-up and tests ------------------------------------------

    def set_direct(self, key: str, value: bytes,
                   durable: bool = True) -> None:
        """Load a KV without the network path (warm-up helper).

        With ``durable=True`` the pair also lands in the host-side AOF
        file (cheaply, bypassing the syscall path) so that a later full
        reboot has something to restore — matching a warm production
        Redis whose AOF was written over its lifetime.
        """
        self._data[key] = value
        if durable:
            record = b"SET %s %s\n" % (key.encode(), value)
            size = self.share.size(AOF_PATH)
            self.share.write(AOF_PATH, size, record)

    def get_direct(self, key: str) -> Optional[bytes]:
        return self._data.get(key)

    def dbsize(self) -> int:
        return len(self._data)

    def app_state_bytes(self) -> int:
        # dict-entry estimate: key + value + per-entry bookkeeping
        return sum(len(k) + len(v) + 96 for k, v in self._data.items())
