"""The libc shim: POSIX-ish calls the applications link against.

In a unikernel the application calls ``open()``/``read()``/``socket()``
and the library OS resolves them; here the shim routes each call to the
owning component through the kernel's dispatcher (direct calls under
vanilla Unikraft, message passing under VampOS) — so application code
is *identical* across both kernels, exactly like relinking the same app
against a different unikernel build.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..unikernel.kernel import Kernel


class Libc:
    """Bound to one kernel; every method is one syscall."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel

    # --- files ------------------------------------------------------------------

    def mount(self, mountpoint: str = "/", share_root: str = "/") -> int:
        return self.kernel.syscall("VFS", "mount", mountpoint, "9pfs",
                                   share_root)

    def open(self, path: str, flags: str = "r") -> int:
        return self.kernel.syscall("VFS", "open", path, flags)

    def create(self, path: str) -> int:
        return self.kernel.syscall("VFS", "create", path)

    def read(self, fd: int, count: int = 65536) -> bytes:
        return self.kernel.syscall("VFS", "read", fd, count)

    def write(self, fd: int, data: bytes) -> int:
        return self.kernel.syscall("VFS", "write", fd, data)

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        return self.kernel.syscall("VFS", "pread", fd, count, offset)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self.kernel.syscall("VFS", "pwrite", fd, data, offset)

    def writev(self, fd: int, buffers: List[bytes]) -> int:
        return self.kernel.syscall("VFS", "writev", fd, buffers)

    def lseek(self, fd: int, offset: int, whence: str = "set") -> int:
        return self.kernel.syscall("VFS", "lseek", fd, offset, whence)

    def fsync(self, fd: int) -> int:
        return self.kernel.syscall("VFS", "fsync", fd)

    def close(self, fd: int) -> int:
        return self.kernel.syscall("VFS", "close", fd)

    def stat(self, path: str) -> Dict[str, Any]:
        return self.kernel.syscall("VFS", "stat", path)

    def fstat(self, fd: int) -> Dict[str, Any]:
        return self.kernel.syscall("VFS", "fstat", fd)

    def mkdir(self, path: str) -> int:
        return self.kernel.syscall("VFS", "mkdir", path)

    def unlink(self, path: str) -> int:
        return self.kernel.syscall("VFS", "unlink", path)

    def readdir(self, path: str) -> List[str]:
        return self.kernel.syscall("VFS", "readdir", path)

    def pipe(self) -> Tuple[int, int]:
        return self.kernel.syscall("VFS", "pipe")

    def fcntl(self, fd: int, cmd: str, arg: int = 0) -> int:
        return self.kernel.syscall("VFS", "fcntl", fd, cmd, arg)

    def ioctl(self, fd: int, request: str, value: int = 0) -> int:
        return self.kernel.syscall("VFS", "ioctl", fd, request, value)

    # --- sockets -----------------------------------------------------------------

    def socket(self, kind: str = "tcp") -> int:
        return self.kernel.syscall("VFS", "vfs_alloc_socket", kind)

    def bind(self, fd: int, port: int) -> int:
        return self.kernel.syscall("VFS", "bind", fd, port)

    def listen(self, fd: int, backlog: int = 128) -> int:
        return self.kernel.syscall("VFS", "listen", fd, backlog)

    def accept(self, fd: int) -> Optional[int]:
        return self.kernel.syscall("VFS", "accept", fd)

    def send(self, fd: int, data: bytes) -> int:
        return self.kernel.syscall("VFS", "write", fd, data)

    def recv(self, fd: int, count: int = 65536) -> bytes:
        return self.kernel.syscall("VFS", "read", fd, count)

    def shutdown(self, fd: int, how: str = "rdwr") -> int:
        return self.kernel.syscall("VFS", "shutdown", fd, how)

    def setsockopt(self, fd: int, option: str, value: int) -> int:
        return self.kernel.syscall("VFS", "setsockopt", fd, option, value)

    def getsockopt(self, fd: int, option: str) -> int:
        return self.kernel.syscall("VFS", "getsockopt", fd, option)

    def socket_pending(self, fd: int) -> int:
        return self.kernel.syscall("VFS", "socket_pending", fd)

    # --- process / misc -----------------------------------------------------------

    def getpid(self) -> int:
        return self.kernel.syscall("PROCESS", "getpid")

    def getuid(self) -> int:
        return self.kernel.syscall("USER", "getuid")

    def uname(self) -> Dict[str, str]:
        return self.kernel.syscall("SYSINFO", "uname")

    def clock_gettime(self) -> float:
        return self.kernel.syscall("TIMER", "clock_gettime")

    def nanosleep(self, duration_us: float) -> int:
        return self.kernel.syscall("TIMER", "nanosleep", duration_us)
