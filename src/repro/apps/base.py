"""Application base classes.

Each of the paper's four applications (§VI) links a specific component
set and runs unmodified on either kernel.  ``UnikernelApp`` owns the
image spec, the kernel, and the host-side environment (share +
network); ``ServerApp`` adds the accept/poll loop the three network
servers share.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from .. import components as _components  # noqa: F401  (registers Table I)
from ..core.config import VampConfig
from ..core.runtime import VampOSKernel
from ..net.hostshare import HostShare
from ..net.tcp import HostNetwork
from ..sim.engine import Simulation
from ..unikernel.errors import SyscallError
from ..unikernel.image import ImageBuilder, ImageSpec
from ..unikernel.kernel import Kernel, UnikraftKernel
from .libc import Libc

#: mode selector: the string "unikraft" or a VampConfig
KernelMode = Union[str, VampConfig]


class UnikernelApp:
    """An application linked with its unikernel."""

    #: application name (subclasses override)
    NAME = "app"
    #: the component selection of §VI (VIRTIO etc. come in transitively)
    COMPONENTS: Tuple[str, ...] = ()

    def __init__(self, sim: Simulation, mode: KernelMode = "unikraft",
                 share: Optional[HostShare] = None,
                 network: Optional[HostNetwork] = None,
                 num_protection_keys: int = 16) -> None:
        self.sim = sim
        self.share = share if share is not None else HostShare()
        self.network = network if network is not None else HostNetwork(sim)
        self.mode = mode
        spec = ImageSpec(
            self.NAME, list(self.COMPONENTS),
            component_args={"VIRTIO": {"share": self.share,
                                       "network": self.network}})
        image = ImageBuilder().build(spec, sim)
        if isinstance(mode, VampConfig):
            self.kernel: Kernel = VampOSKernel(
                image, mode, num_protection_keys=num_protection_keys)
        elif mode == "unikraft":
            self.kernel = UnikraftKernel(image)
        else:
            raise ValueError(f"unknown kernel mode {mode!r}")
        self.libc = Libc(self.kernel)
        self.kernel.on_full_reboot(self._handle_full_reboot)
        self.prepare_host()
        self.kernel.boot()
        self.setup()

    # --- subclass hooks -------------------------------------------------------------

    def prepare_host(self) -> None:
        """Create host-share content the app expects (docroot, db dir)."""

    def setup(self) -> None:
        """Application initialisation (mount, open files, listen)."""

    def reset_state(self) -> None:
        """Drop all in-memory application state (full reboot lost it)."""

    # --- lifecycle --------------------------------------------------------------------

    def _handle_full_reboot(self) -> None:
        self.reset_state()
        self.setup()

    @property
    def vampos(self) -> Optional[VampOSKernel]:
        """The kernel as a VampOSKernel, or None under vanilla."""
        return self.kernel if isinstance(self.kernel, VampOSKernel) else None

    def is_vampos(self) -> bool:
        return isinstance(self.kernel, VampOSKernel)

    def mpk_tag_count(self) -> int:
        vamp = self.vampos
        return vamp.mpk_tag_count() if vamp is not None else 0

    def memory_footprint_bytes(self) -> int:
        """Image footprint plus the app's own in-memory state."""
        total = self.kernel.image.total_memory_bytes() \
            + self.app_state_bytes()
        vamp = self.vampos
        if vamp is not None:
            total += vamp.memory_overhead_bytes()
        return total

    def app_state_bytes(self) -> int:
        """Bytes of application-layer state (subclasses override)."""
        return 0


class ServerApp(UnikernelApp):
    """Shared accept/poll skeleton of Nginx, Redis and Echo."""

    PORT = 0
    BACKLOG = 128

    def __init__(self, sim: Simulation, mode: KernelMode = "unikraft",
                 share: Optional[HostShare] = None,
                 network: Optional[HostNetwork] = None,
                 **kernel_kwargs: Any) -> None:
        self._listen_fd: Optional[int] = None
        #: client fd -> receive buffer of a partial request
        self._conn_buffers: Dict[int, bytearray] = {}
        self.requests_served = 0
        super().__init__(sim, mode, share, network, **kernel_kwargs)

    def setup(self) -> None:
        fd = self.libc.socket()
        self.libc.bind(fd, self.PORT)
        self.libc.listen(fd, self.BACKLOG)
        self._listen_fd = fd

    def reset_state(self) -> None:
        self._listen_fd = None
        self._conn_buffers.clear()

    # --- the poll loop --------------------------------------------------------------------

    def poll(self, max_accepts: int = 64) -> int:
        """One server iteration: accept new connections, then service
        every readable connection (epoll-style, one batched readiness
        syscall).  Returns the number of requests completed."""
        completed = 0
        vamp = self.vampos
        if vamp is not None:
            vamp.heartbeat()
        for _ in range(max_accepts):
            fd = self.libc.accept(self._listen_fd)
            if fd is None:
                break
            self._conn_buffers[fd] = bytearray()
        if not self._conn_buffers:
            return 0
        readiness = self.kernel.syscall("VFS", "poll_fds",
                                        list(self._conn_buffers))
        for fd, pending in readiness.items():
            if pending < 0:
                # EOF/reset: the peer is gone and the buffer drained.
                self._drop_connection(fd)
            elif pending > 0:
                completed += self._service(fd)
        return completed

    def _service(self, fd: int) -> int:
        buffer = self._conn_buffers.get(fd)
        if buffer is None:
            return 0
        try:
            buffer.extend(self.libc.recv(fd))
        except SyscallError as exc:
            if exc.errno == "ECONNRESET":
                self._drop_connection(fd)
                return 0
            raise
        completed = 0
        while True:
            consumed, response, close_after = self.handle_data(bytes(buffer))
            if consumed == 0:
                break
            del buffer[:consumed]
            try:
                if response:
                    self.libc.send(fd, response)
            except SyscallError as exc:
                if exc.errno == "ECONNRESET":
                    self._drop_connection(fd)
                    return completed
                raise
            completed += 1
            self.requests_served += 1
            if close_after:
                self._close_connection(fd)
                return completed
        return completed

    def handle_data(self, data: bytes) -> Tuple[int, bytes, bool]:
        """Parse one request from ``data``.

        Returns ``(consumed_bytes, response_bytes, close_after)``;
        ``consumed == 0`` means the request is still incomplete.
        """
        raise NotImplementedError

    def _close_connection(self, fd: int) -> None:
        self._conn_buffers.pop(fd, None)
        try:
            self.libc.close(fd)
        except SyscallError:
            pass

    def _drop_connection(self, fd: int) -> None:
        self._conn_buffers.pop(fd, None)
        try:
            self.libc.close(fd)
        except SyscallError:
            pass

    def open_connections(self) -> int:
        return len(self._conn_buffers)
