"""Echo — "a simple server that sends the same messages received from
clients" (§VI).

Components: PROCESS, USER, NETDEV, TIMER, VFS, LWIP, VIRTIO — seven
components; the VampOS build uses ten MPK tags (application + seven
components + message domain + thread scheduler).

Protocol: newline-framed messages, echoed verbatim.  Clients close
their connections after each exchange, so Echo's log never grows —
the paper notes its space overhead is negligible for this reason.
"""

from __future__ import annotations

from typing import Tuple

from .base import ServerApp


class EchoServer(ServerApp):
    NAME = "echo"
    COMPONENTS = ("PROCESS", "USER", "NETDEV", "TIMER", "VFS", "LWIP",
                  "VIRTIO")
    PORT = 7

    def handle_data(self, data: bytes) -> Tuple[int, bytes, bool]:
        newline = data.find(b"\n")
        if newline < 0:
            return (0, b"", False)
        message = data[:newline + 1]
        return (len(message), message, False)
