"""Execute a recovery plan as overlapping virtual-time tracks.

The scheduler is the only place in the runtime that moves the clock
non-monotonically, and it does so under one discipline, mirroring how
the parallel engine merges shard ledgers:

* Tracks run **in the exact serial sweep order** — the sequence of
  ``sim.charge(category, amount)`` calls is byte-for-byte what the
  serial sweep would issue, so ledger totals and counts stay
  bit-identical (float addition order preserved).
* Before each track the clock **seeks** to that track's ready time:
  the episode start, or the latest completion wave among its failed
  providers (a dependent's replay re-issues calls into its providers,
  so it must not come back first).
* After the last track the clock seeks to the **max-merged** track
  end.  Elapsed episode time is therefore the dependency DAG's
  critical path instead of the sum of reboot costs — that delta is the
  whole optimisation.

Every timestamp written during a track (reboot records, spans, trace
events) is ≤ the merged end, so observers downstream of the episode
still see monotonic time.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .planner import RecoveryPlan


def execute_plan(kernel: Any, plan: RecoveryPlan,
                 reason: str = "heartbeat", replay: bool = True,
                 reboot: Optional[Callable[[str], Any]] = None
                 ) -> List[Any]:
    """Run ``plan``'s tracks against ``kernel``, overlapping where the
    plan allows.  Returns the :class:`RebootRecord` list in serial
    sweep order.

    ``reboot`` overrides the per-track action (defaults to
    ``kernel.reboot_component``); a track that raises aborts the
    episode with the clock max-merged over the tracks that completed —
    the same exception the serial sweep would propagate.  A ``reboot``
    that returns ``None`` *skips* the track (zero duration, nothing
    recorded): the heartbeat's precheck does this when an earlier
    track's replay already healed the component, exactly as the serial
    sweep would find it healthy at its turn.
    """
    sim = kernel.sim
    clock = sim.clock
    if reboot is None:
        def reboot(name: str) -> Any:
            return kernel.reboot_component(name, reason=reason,
                                           replay=replay)
    t0 = clock.now_us
    end_at = {}
    merged_end = t0
    obs = sim.obs
    pspan = None
    if obs is not None:
        obs.inc("recovery.plans")
        pspan = obs.open_span("recovery_plan", reason,
                              tracks=plan.track_count,
                              levels=len(plan.levels))
    if sim.trace.wants("supervisor"):
        sim.emit("supervisor", "recovery_plan",
                 tracks=plan.track_count,
                 levels=[list(bucket) for bucket in plan.levels],
                 reason=reason)
    records: List[Any] = []
    try:
        for track in plan.tracks:
            ready = t0
            for provider in track.providers:
                provider_end = end_at.get(provider)
                if provider_end is not None and provider_end > ready:
                    ready = provider_end
            clock.seek(ready)
            track.start_us = ready
            tspan = None
            if obs is not None:
                tspan = obs.open_span("recovery_track", track.unit,
                                      level=track.level)
            try:
                record = reboot(track.component)
            finally:
                track.end_us = clock.now_us
                if track.end_us > merged_end:
                    merged_end = track.end_us
                if obs is not None:
                    obs.close_span(tspan,
                                   track_us=track.end_us - track.start_us)
            end_at[track.unit] = track.end_us
            if record is not None:
                records.append(record)
    finally:
        if clock.now_us < merged_end:
            clock.seek(merged_end)
        sup = getattr(kernel, "supervisor", None)
        if sup is not None:
            # Attribute the max-merge seek to resume; per-track time was
            # already marked inside each reboot (the phase clock ignores
            # the backwards seeks between overlapping tracks).
            sup.phase_mark("resume")
        if obs is not None:
            obs.close_span(pspan, planned_us=clock.now_us - t0)
    telemetry = getattr(getattr(kernel, "supervisor", None),
                        "telemetry", None)
    if telemetry is not None:
        telemetry.note_plan([t.duration_us for t in plan.tracks],
                            planned_us=merged_end - t0)
    if obs is not None:
        obs.observe("recovery.plan_serial_us",
                    sum(t.duration_us for t in plan.tracks))
        obs.observe("recovery.plan_planned_us", merged_end - t0)
    return records
