"""Recovery plans: which failed units may reboot concurrently.

A :class:`RecoveryPlan` is the planner's verdict over a set of failed
components: the reboot *tracks* (one per failed unit, in the exact
serial sweep order), the dependency :func:`level partition
<repro.recovery.graph.level_partition>`, and whether the tracks may
overlap at all.  The plan is pure data — executing it against a kernel
is the scheduler's job (:mod:`repro.recovery.scheduler`).

The safety rule baked in here: tracks execute in the serial order and
may only *overlap*, never *reorder*.  That keeps every
``sim.charge(category, amount)`` in the identical sequence the serial
sweep would issue (ledger totals and counts stay bit-identical —
float addition order preserved); the only thing parallelism changes is
each track's start time, and therefore the merged clock.  A plan whose
serial order is not a topological order of the failed-unit DAG (a
dependent sweeping before its provider) cannot be overlapped without
reordering, so it degrades to ``parallel=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from .graph import (DependencyCycle, call_graph, critical_path_length,
                    level_partition, unit_dag)


@dataclass
class RecoveryTrack:
    """One failed unit's reboot, as a schedulable track."""

    unit: str
    #: representative member passed to ``reboot_component`` (the unit
    #: reboot restores every member of the merge group)
    component: str
    #: failed provider units whose completion wave this track blocks on
    providers: Tuple[str, ...]
    #: dependency level (0 = no failed providers)
    level: int
    # filled in by the scheduler after execution:
    start_us: float = 0.0
    end_us: float = 0.0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class RecoveryPlan:
    """The planner's verdict over one multi-failure episode."""

    tracks: List[RecoveryTrack] = field(default_factory=list)
    #: unit names per dependency level (level 0 first)
    levels: List[List[str]] = field(default_factory=list)
    #: False → execute the plain serial sweep (see ``serial_reason``)
    parallel: bool = False
    serial_reason: str = ""

    @property
    def track_count(self) -> int:
        return len(self.tracks)

    @property
    def critical_path(self) -> int:
        return critical_path_length(self.levels)


def plan_tracks(failed: Sequence[str],
                edges: Mapping[str, Iterable[str]],
                unit_of: Callable[[str], str]) -> RecoveryPlan:
    """Build a plan from pure data (no kernel needed).

    ``failed`` lists the failed components in serial sweep order, at
    most one per unit (the sweep skips co-members of an already-due
    unit).  ``edges`` is the component-level caller→callees graph.
    """
    units, deps = unit_dag(failed, edges, unit_of)
    rep: Dict[str, str] = {}
    for name in failed:
        rep.setdefault(unit_of(name), name)
    try:
        levels = level_partition(units, deps)
    except DependencyCycle as cycle:
        return RecoveryPlan(
            tracks=[RecoveryTrack(unit, rep[unit], (), 0) for unit in units],
            levels=[list(units)], parallel=False,
            serial_reason=str(cycle))
    level_of = {unit: i for i, bucket in enumerate(levels)
                for unit in bucket}
    tracks = []
    seen: set = set()
    topological = True
    for unit in units:  # serial sweep order
        providers = tuple(sorted(deps[unit]))
        if any(provider not in seen for provider in providers):
            topological = False
        seen.add(unit)
        tracks.append(RecoveryTrack(unit, rep[unit], providers,
                                    level_of[unit]))
    if len(units) < 2:
        return RecoveryPlan(tracks, levels, False, "fewer than two units")
    if not topological:
        return RecoveryPlan(
            tracks, levels, False,
            "serial sweep order is not topological for the failure DAG")
    return RecoveryPlan(tracks, levels, True)


def plan_for_kernel(kernel: "object", failed: Sequence[str]) -> RecoveryPlan:
    """Plan recovery for ``failed`` components of a running kernel.

    Edges come from the live call-log edge indexes unioned with the
    image's declared dependency graph; units come from the scheduler
    (merge groups collapse onto one track).
    """
    edges = call_graph(kernel.logs, kernel.image.dependency_graph())
    return plan_tracks(failed, edges, kernel.scheduler.unit_of)
