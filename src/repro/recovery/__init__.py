"""Dependency-aware parallel recovery planning.

When a heartbeat sweep (or a multi-component ladder rung) must reboot
several failed units at once, this package decides which of those
reboots may overlap — the dependency graph is derived from the
incrementally indexed call-log edges unioned with the statically
declared component dependencies — and executes them as overlapping
virtual-time tracks whose clocks max-merge instead of summing.

See :mod:`repro.recovery.graph` (graph derivation),
:mod:`repro.recovery.planner` (level partition + plan construction)
and :mod:`repro.recovery.scheduler` (track execution + the
serial-equivalence discipline).
"""

from .graph import (DependencyCycle, call_graph, critical_path_length,
                    level_partition, unit_dag)
from .planner import (RecoveryPlan, RecoveryTrack, plan_for_kernel,
                      plan_tracks)
from .scheduler import execute_plan

__all__ = [
    "DependencyCycle",
    "RecoveryPlan",
    "RecoveryTrack",
    "call_graph",
    "critical_path_length",
    "execute_plan",
    "level_partition",
    "plan_for_kernel",
    "plan_tracks",
    "unit_dag",
]
