"""Dependency graphs for parallel recovery planning.

The planner needs to know, for a set of simultaneously failed
components, which of them depend on which others — a dependent's
recovery (snapshot restore + encapsulated log replay) re-issues calls
into its providers, so it must not come back before they do.

Two sources feed the graph:

* **Indexed call-log edges** — every live return-value record in a
  component's call log names the callee it was recorded against
  (``ComponentCallLog.call_edges``, maintained incrementally on log
  append/tombstone).  These are the *observed* caller→callee edges:
  exactly the calls a replay will re-issue.
* **Declared dependencies** — each component class's static
  ``DEPENDENCIES`` tuple.  These seed the graph before any traffic has
  been logged (a cold storm must still serialize VFS behind 9PFS).

The union is conservative: an edge from either source serializes the
dependent behind its provider.  Everything here is pure data →  data so
the builder is directly unit-testable with hand-built fixtures.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Set


class DependencyCycle(Exception):
    """The failed-unit dependency graph contains a cycle (mutually
    recursive call logs) — no level partition exists, so the planner
    falls back to the serial sweep."""


def call_graph(logs: Mapping[str, "object"],
               declared: Mapping[str, Sequence[str]] = None
               ) -> Dict[str, Set[str]]:
    """caller → set-of-callees over the whole kernel.

    ``logs`` maps component name → ``ComponentCallLog`` (anything with
    a ``call_edges()`` method); ``declared`` maps component name → its
    statically declared dependencies.  Self-edges are dropped — a
    component's replay never blocks on its own recovery.
    """
    edges: Dict[str, Set[str]] = {}
    for caller, log in logs.items():
        targets = set(log.call_edges())
        targets.discard(caller)
        if targets:
            edges[caller] = targets
    if declared:
        for caller, deps in declared.items():
            targets = set(deps)
            targets.discard(caller)
            if targets:
                edges.setdefault(caller, set()).update(targets)
    return edges


def unit_dag(failed: Sequence[str],
             edges: Mapping[str, Iterable[str]],
             unit_of: Callable[[str], str]
             ) -> "tuple[List[str], Dict[str, Set[str]]]":
    """Collapse component-level edges onto the failed *units*.

    Components sharing a merge group reboot as one unit, so they form a
    single node; edges between members of the same unit vanish (the
    unit reboot handles them atomically).  Only edges between two
    failed units survive — a provider that did not fail is already up
    and constrains nothing.

    Returns ``(units, deps)``: the failed units in first-seen (i.e.
    serial sweep) order, and per-unit provider sets restricted to
    failed units.
    """
    units: List[str] = []
    members: Dict[str, List[str]] = {}
    for name in failed:
        unit = unit_of(name)
        if unit not in members:
            units.append(unit)
            members[unit] = []
        members[unit].append(name)
    failed_unit_of: Dict[str, str] = {}
    for unit in units:
        for name in members[unit]:
            failed_unit_of[name] = unit
    deps: Dict[str, Set[str]] = {unit: set() for unit in units}
    for caller, targets in edges.items():
        caller_unit = failed_unit_of.get(caller)
        if caller_unit is None:
            caller_unit = unit_of(caller)
            if caller_unit not in deps:
                continue
        for target in targets:
            target_unit = failed_unit_of.get(target)
            if target_unit is None or target_unit == caller_unit:
                continue
            deps[caller_unit].add(target_unit)
    return units, deps


def level_partition(units: Sequence[str],
                    deps: Mapping[str, Set[str]]) -> List[List[str]]:
    """Partition units into dependency levels by longest provider path.

    Level 0 holds units with no failed providers; a dependent lands one
    level past its deepest provider.  Units within a level keep their
    input (serial sweep) order, so the partition is schedule-stable.
    Raises :class:`DependencyCycle` when no partition exists.
    """
    level: Dict[str, int] = {}

    def resolve(unit: str, stack: Set[str]) -> int:
        known = level.get(unit)
        if known is not None:
            return known
        if unit in stack:
            raise DependencyCycle(
                f"dependency cycle through {unit!r}: "
                f"{sorted(stack)} cannot be level-partitioned")
        stack.add(unit)
        depth = 0
        for provider in sorted(deps.get(unit, ())):
            depth = max(depth, resolve(provider, stack) + 1)
        stack.discard(unit)
        level[unit] = depth
        return depth

    for unit in units:
        resolve(unit, set())
    if not units:
        return []
    buckets: List[List[str]] = [[] for _ in range(max(level.values()) + 1)]
    for unit in units:  # input order within each level
        buckets[level[unit]].append(unit)
    return buckets


def critical_path_length(levels: Sequence[Sequence[str]]) -> int:
    """Length (in units) of the longest provider chain — the number of
    reboots that cannot overlap, i.e. the plan's depth."""
    return len(levels)
