"""The failure detector run by the message thread (§V-A).

A simple heart-beat style detector: illegal memory accesses (protection
faults) and ``panic()`` invocations transfer control to error handlers
that trigger the component reboot; a hang detector flags a component
when the processing time of a pulled message exceeds a threshold
(1.0 s in the prototype).  Components that legitimately wait on
external events — LWIP — are exempt (``HANG_EXEMPT``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.clock import us_from_s
from ..sim.engine import Simulation
from ..unikernel.component import Component, ComponentState
from ..unikernel.errors import ApplicationHang, HangDetected

#: the prototype's hang threshold (§V-A)
DEFAULT_HANG_THRESHOLD_US = us_from_s(1.0)

#: a custom failure sensor: inspect a component, return a reason string
#: when it should be treated as failed, or None when healthy (§V-A
#: points at "sophisticated runtime failure sensors" [13,16,47,51] —
#: this is the plug point for them)
FailureSensor = Callable[[Component], Optional[str]]


@dataclass
class DetectedFailure:
    t_us: float
    component: str
    kind: str          # "panic" | "hang" | "protection_fault"
    detail: str = ""


class FailureDetector:
    """Detects fail-stop faults and hands them to the recovery path."""

    def __init__(self, sim: Simulation,
                 hang_threshold_us: float = DEFAULT_HANG_THRESHOLD_US) -> None:
        self.sim = sim
        self.hang_threshold_us = hang_threshold_us
        self.failures: List[DetectedFailure] = []
        self.sensors: List[FailureSensor] = []
        #: per-component failure timestamps, time-ordered (an index into
        #: ``failures`` so the storm window is a bisect, not a scan)
        self._failure_times: Dict[str, List[float]] = {}

    def add_sensor(self, sensor: FailureSensor) -> None:
        """Install a custom failure sensor, consulted by the
        heart-beat sweep for every rebootable component."""
        self.sensors.append(sensor)

    def sense(self, comp: Component) -> Optional[str]:
        """Run the custom sensors; the first failure reason wins."""
        for sensor in self.sensors:
            reason = sensor(comp)
            if reason:
                return reason
        return None

    def record(self, component: str, kind: str, detail: str = "") -> \
            DetectedFailure:
        failure = DetectedFailure(t_us=self.sim.clock.now_us,
                                  component=component, kind=kind,
                                  detail=detail)
        self.failures.append(failure)
        self._failure_times.setdefault(component, []).append(failure.t_us)
        self.sim.emit("detector", kind, component=component, detail=detail)
        return failure

    def check_hang(self, comp: Component) -> None:
        """Raise :class:`HangDetected` if the component is hung.

        The detector only notices after the processing-time threshold
        elapses, so that much virtual time is charged first — this is
        the detection latency visible in recovery downtime.  Exempt
        components stall the whole application instead (the detector
        "does nothing" for them, §V-A).
        """
        if not comp.injected_hang:
            return
        if comp.HANG_EXEMPT:
            raise ApplicationHang(comp.NAME)
        self.sim.charge("hang_detection", self.hang_threshold_us)
        comp.injected_hang = False
        comp.state = ComponentState.FAILED
        self.record(comp.NAME, "hang",
                    f"message processing exceeded "
                    f"{self.hang_threshold_us / 1e6:.1f}s")
        raise HangDetected(comp.NAME)

    def scan(self, components: List[Component]) -> List[str]:
        """Heart-beat sweep: names of components currently failed."""
        return [c.NAME for c in components
                if c.state is ComponentState.FAILED]

    def failures_for(self, component: str) -> List[DetectedFailure]:
        return [f for f in self.failures if f.component == component]

    def recent_failures(self, component: str, window_us: float,
                        now_us: Optional[float] = None) -> int:
        """Failures of ``component`` inside the trailing window.

        The recovery supervisor's crash-storm detector slides this
        window over the failure history; per-component timestamps are
        append-only in time order, so the window boundary is a bisect
        rather than a history scan (this sits on the recovery hot path).
        """
        if now_us is None:
            now_us = self.sim.clock.now_us
        times = self._failure_times.get(component)
        if not times:
            return 0
        return len(times) - bisect_left(times, now_us - window_us)
