"""VampOS: component-level reboot-based recovery (the paper's contribution)."""

from .calllog import CallLogEntry, ComponentCallLog, ReturnValueRecord
from .config import (
    ALL_CONFIGS,
    DAS,
    FSM,
    NETM,
    NOOP,
    SCHEDULER_DEPENDENCY_AWARE,
    SCHEDULER_ROUND_ROBIN,
    SUPERVISED,
    VampConfig,
    config_by_name,
)
from .messages import Message, MessageDomain, MessageDomainFull
from .policy import AgingDrivenPolicy, PolicyStats, RejuvenationPolicy
from .detector import (
    DEFAULT_HANG_THRESHOLD_US,
    DetectedFailure,
    FailureDetector,
)
from .restore import (
    EncapsulatedRestorer,
    ReplayMismatch,
    ReplaySession,
    ReplayStats,
)
from .runtime import RebootRecord, VampDispatcher, VampOSKernel, build_vampos
from .scheduler import (
    APP_THREAD,
    MSG_THREAD,
    BaseScheduler,
    ComponentThread,
    DependencyAwareScheduler,
    RoundRobinScheduler,
    SchedulerStats,
    ThreadState,
    build_units,
)
from .shrink import DEFAULT_SHRINK_THRESHOLD, LogShrinker, ShrinkStats

__all__ = [
    "CallLogEntry",
    "ComponentCallLog",
    "ReturnValueRecord",
    "ALL_CONFIGS",
    "DAS",
    "FSM",
    "NETM",
    "NOOP",
    "SCHEDULER_DEPENDENCY_AWARE",
    "SCHEDULER_ROUND_ROBIN",
    "SUPERVISED",
    "VampConfig",
    "config_by_name",
    "Message",
    "MessageDomain",
    "MessageDomainFull",
    "AgingDrivenPolicy",
    "PolicyStats",
    "RejuvenationPolicy",
    "DEFAULT_HANG_THRESHOLD_US",
    "DetectedFailure",
    "FailureDetector",
    "EncapsulatedRestorer",
    "ReplayMismatch",
    "ReplaySession",
    "ReplayStats",
    "RebootRecord",
    "VampDispatcher",
    "VampOSKernel",
    "build_vampos",
    "APP_THREAD",
    "MSG_THREAD",
    "BaseScheduler",
    "ComponentThread",
    "DependencyAwareScheduler",
    "RoundRobinScheduler",
    "SchedulerStats",
    "ThreadState",
    "build_units",
    "DEFAULT_SHRINK_THRESHOLD",
    "LogShrinker",
    "ShrinkStats",
]
