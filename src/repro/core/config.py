"""The evaluated VampOS configurations (§VII-A).

* **VampOS-Noop** — every component message-passing, round-robin
  scheduler, no merging.
* **VampOS-DaS** — Noop plus dependency-aware scheduling.
* **VampOS-FSm** — DaS plus the file-system merge (VFS ⊕ 9PFS).
* **VampOS-NETm** — DaS plus the network merge (LWIP ⊕ NETDEV).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..sim.clock import us_from_s
from .detector import DEFAULT_HANG_THRESHOLD_US
from .shrink import DEFAULT_SHRINK_THRESHOLD

SCHEDULER_ROUND_ROBIN = "round-robin"
SCHEDULER_DEPENDENCY_AWARE = "dependency-aware"


@dataclass(frozen=True)
class VampConfig:
    """Tunable knobs of the VampOS runtime."""

    name: str = "VampOS"
    scheduler: str = SCHEDULER_DEPENDENCY_AWARE
    #: merge groups: group name -> member components (§V-F)
    merges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: session-aware log shrinking threshold in entries (§V-F / §VI)
    shrink_threshold: int = DEFAULT_SHRINK_THRESHOLD
    #: disable shrinking entirely (ablation)
    shrink_enabled: bool = True
    #: hang-detector processing-time threshold (§V-A)
    hang_threshold_us: float = DEFAULT_HANG_THRESHOLD_US
    #: enforce MPK protection domains (§V-D); the ablation turns it off
    enforce_mpk: bool = True
    #: function-call logging for encapsulated restoration (§V-B);
    #: disabling it reduces overhead but makes stateful reboots unsafe
    logging_enabled: bool = True
    #: take post-boot checkpoints (§V-E); the ablation compares against
    #: full re-initialisation restarts
    checkpoints_enabled: bool = True
    #: message-domain arena size (logs + message buffers), bytes
    msg_domain_bytes: int = 16 * 1024 * 1024
    #: virtualize protection keys (libmpk-style, §V-D) so images with
    #: more domains than hardware keys still get isolation
    virtualize_keys: bool = False
    #: microreboot-style escalation (Candea et al. [8], the lineage the
    #: paper builds on): when the rebooted component fails again and no
    #: variant helps, reboot progressively larger scopes (all rebootable
    #: components) before fail-stopping — recovers failures whose root
    #: cause lives in another component (§II-B's out-of-scope case)
    escalation_enabled: bool = False

    # --- recovery supervisor (escalation ladder beyond the paper) ---------
    #: fresh-restart rung: when the replay itself re-triggers the fault,
    #: restart from the post-boot checkpoint *without* replaying the log
    #: (lossy — logged state is dropped — but keeps the kernel serving)
    fresh_restart_enabled: bool = False
    #: dependency-scoped widening rung: reboot BFS rings of the failed
    #: component's declared callers/callees before giving up — reaches
    #: §II-B's root-cause-in-another-component case without the full
    #: rejuvenate-all sweep
    scope_widening_enabled: bool = False
    #: degraded-mode rung: instead of fail-stopping on a chronic fault,
    #: quarantine the component — its interface calls return an
    #: ENODEV-style error and the rest of the image keeps serving
    degraded_mode_enabled: bool = False
    #: free recoveries per component inside ``retry_window_us`` before
    #: exponential backoff (quarantine time charged to the clock) starts
    retry_budget: int = 3
    retry_window_us: float = us_from_s(10.0)
    #: first over-budget recovery waits this long; doubles per overrun
    backoff_base_us: float = 100_000.0
    backoff_factor: float = 2.0
    backoff_cap_us: float = us_from_s(2.0)
    #: crash-storm detector: this many detected failures of one
    #: component inside ``storm_window_us`` trip it straight into
    #: degraded mode (when enabled) instead of walking the ladder again
    storm_threshold: int = 5
    storm_window_us: float = us_from_s(10.0)
    #: degraded components are probed (rebooted and given another
    #: chance) at geometrically growing virtual-time intervals
    probation_base_us: float = us_from_s(5.0)
    probation_factor: float = 2.0
    probation_cap_us: float = us_from_s(60.0)

    # --- root rejuvenation (ReHype-style kernel microreboot) ---------------
    #: allow the kernel itself to be microrebooted under the live
    #: components: a pending root panic is absorbed by a root reboot
    #: instead of killing the image, and the rejuvenate-root rung /
    #: proactive wear policy arm.  Off, a root panic is terminal.
    root_rejuvenation_enabled: bool = False
    #: proactive policy: the heartbeat rejuvenates the root once the
    #: accumulated kernel-side wear (orphaned message slots + tombstone
    #: bookkeeping) reaches this many bytes
    root_wear_threshold_bytes: int = 2 * 1024 * 1024

    # --- reliability observatory -------------------------------------------
    #: keep the SLO ledger (availability intervals + per-syscall request
    #: accounting) even without the flight recorder attached; purely
    #: observational — never charges the clock or touches the RNG
    slo_enabled: bool = False

    def with_(self, **overrides: object) -> "VampConfig":
        """A modified copy (keyword names match the field names)."""
        return replace(self, **overrides)

    def validate(self) -> None:
        if self.scheduler not in (SCHEDULER_ROUND_ROBIN,
                                  SCHEDULER_DEPENDENCY_AWARE):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.shrink_threshold < 1:
            raise ValueError("shrink_threshold must be >= 1")
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.retry_window_us <= 0 or self.storm_window_us <= 0:
            raise ValueError("retry/storm windows must be positive")
        if self.backoff_factor < 1.0 or self.probation_factor < 1.0:
            raise ValueError("backoff/probation factors must be >= 1")
        if self.backoff_base_us < 0 or self.backoff_cap_us < 0:
            raise ValueError("backoff times must be non-negative")
        if self.storm_threshold < 2:
            raise ValueError("storm_threshold must be >= 2")
        if self.probation_base_us <= 0 or self.probation_cap_us <= 0:
            raise ValueError("probation times must be positive")
        if self.root_wear_threshold_bytes <= 0:
            raise ValueError("root_wear_threshold_bytes must be positive")
        seen: Dict[str, str] = {}
        for group, members in self.merges.items():
            if len(members) < 2:
                raise ValueError(
                    f"merge group {group!r} needs >= 2 members")
            for member in members:
                if member in seen:
                    raise ValueError(
                        f"component {member!r} in merge groups "
                        f"{seen[member]!r} and {group!r}")
                seen[member] = group


#: round-robin, no merges — the costliest configuration
NOOP = VampConfig(name="VampOS-Noop", scheduler=SCHEDULER_ROUND_ROBIN)

#: + dependency-aware scheduling
DAS = VampConfig(name="VampOS-DaS", scheduler=SCHEDULER_DEPENDENCY_AWARE)

#: DaS + file-system merge
FSM = VampConfig(name="VampOS-FSm", scheduler=SCHEDULER_DEPENDENCY_AWARE,
                 merges={"FS": ("VFS", "9PFS")})

#: DaS + network merge
NETM = VampConfig(name="VampOS-NETm", scheduler=SCHEDULER_DEPENDENCY_AWARE,
                  merges={"NET": ("LWIP", "NETDEV")})

#: DaS with the full recovery-supervisor ladder armed: fresh restarts,
#: dependency-scoped widening, rejuvenate-all escalation and graceful
#: degradation (the chaos-soak campaign's treatment arm)
SUPERVISED = VampConfig(name="VampOS-Supervised",
                        scheduler=SCHEDULER_DEPENDENCY_AWARE,
                        escalation_enabled=True,
                        fresh_restart_enabled=True,
                        scope_widening_enabled=True,
                        degraded_mode_enabled=True,
                        root_rejuvenation_enabled=True,
                        slo_enabled=True)

#: the four configurations evaluated in §VII, in paper order
ALL_CONFIGS = (NOOP, DAS, FSM, NETM)


def config_by_name(name: str) -> VampConfig:
    for config in ALL_CONFIGS + (SUPERVISED,):
        if config.name == name or config.name.lower() == name.lower():
            return config
    short = {"noop": NOOP, "das": DAS, "fsm": FSM, "netm": NETM,
             "supervised": SUPERVISED}
    key = name.lower().replace("vampos-", "")
    if key in short:
        return short[key]
    raise KeyError(f"unknown VampOS configuration {name!r}")
