"""Function-call and return-value logs (Fig. 4, §V-B).

The message domain keeps, per stateful component, a log of the calls
*into* the component (the function-call log) and, attached to each such
entry, the return values of the calls the component made *out* while
executing it (the return-value log).  Encapsulated restoration replays
the call log and answers the outbound calls from the attached return
values instead of executing them, so the running components never see
the restoration (Fig. 3).

Entries deep-copy arguments and results: the log must stay valid even
if the caller later mutates the objects it passed (and a faulty
component must not be able to corrupt its own recovery data — in the
paper the logs live in the message domain behind their own MPK tag for
exactly this reason).  Immutable payloads (the vast majority of logged
syscall arguments) are stored by reference instead — mutation-safety
holds trivially and the copy is free.

Hot-path data structures (see DESIGN.md, "Fast-path invariants"):

* ``self._entries`` holds every entry in append order, with pruned
  entries tombstoned (``entry.alive = False``) and compacted away once
  they outnumber the live ones; the public ``entries`` view exposes
  only live entries.
* ``self._by_key`` indexes live entries per session key, so the
  shrinker's per-key queries cost O(entries for that key) instead of
  O(log length).
* ``space_bytes()`` / ``record_count()`` are maintained incrementally
  on append / prune / retval-attach instead of walking the log.  A
  ``CallLogEntry`` notifies its owning log when its ``key`` or
  ``result`` is assigned after append (the dispatcher does both), so
  the index and the accounting never go stale.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, List, Optional, Tuple

from ..fastpath import (
    FLAGS,
    HANDLE_CACHE_LIMIT,
    HANDLES,
    type_fingerprint,
)
from ..fastpath import IMMUTABLE_SCALARS as _IMMUTABLE_SCALARS  # noqa: F401
from ..fastpath import is_immutable as _is_immutable

#: content-keyed caches shared with the snapshot/message fast paths
_LOG_BYTES = HANDLES.log_bytes
_BLOBS = HANDLES.blobs


class ReturnValueRecord:
    """One outbound call's outcome, recorded for replay interception."""

    __slots__ = ("target", "func", "result", "error")

    def __init__(self, target: str, func: str, result: Any = None,
                 error: Optional[Tuple[str, str]] = None) -> None:
        self.target = target
        self.func = func
        self.result = result
        #: (errno, message) when the call raised a SyscallError; replay
        #: re-raises it so the component takes the same path again
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReturnValueRecord(target={self.target!r}, "
                f"func={self.func!r}, result={self.result!r}, "
                f"error={self.error!r})")


class CallLogEntry:
    """One logged inbound call.

    Slotted (hot-path class: one is built per logged syscall).  The
    ``_log`` slot is the owning :class:`ComponentCallLog` back-pointer;
    it is initialised first so ``__setattr__`` can always read it.
    """

    __slots__ = ("seq", "func", "args", "kwargs", "key", "result",
                 "session_opener", "canceling", "durable", "nested",
                 "synthetic_patch", "completed", "alive", "_log",
                 "_space")

    def __init__(self, seq: int, func: str, args: Tuple[Any, ...],
                 kwargs: Dict[str, Any], key: Any = None,
                 result: Any = None, session_opener: bool = False,
                 canceling: bool = False, durable: bool = False,
                 nested: Optional[List[ReturnValueRecord]] = None,
                 synthetic_patch: Optional[Tuple[Any, Any]] = None,
                 completed: bool = False, alive: bool = True) -> None:
        oset = object.__setattr__
        oset(self, "_log", None)
        oset(self, "seq", seq)
        oset(self, "func", func)
        oset(self, "args", args)
        oset(self, "kwargs", kwargs)
        #: session key (fd / fid / socket id) for session-aware shrinking
        oset(self, "key", key)
        oset(self, "result", result)
        #: whether this entry opens a session for its key (open/socket)
        oset(self, "session_opener", session_opener)
        #: whether this entry is a canceling function (close)
        oset(self, "canceling", canceling)
        #: durable entries hold data the component itself stores (§V-F
        #: caveat); canceling prunes skip them
        oset(self, "durable", durable)
        #: return values of the component's outbound calls during this
        #: call
        oset(self, "nested", nested if nested is not None else [])
        #: forced-shrink synthetic entry: apply this state patch instead
        #: of replaying pruned per-key operations
        oset(self, "synthetic_patch", synthetic_patch)
        #: False while the call is still executing; replay skips
        #: in-flight entries (their nested retvals are partial)
        oset(self, "completed", completed)
        #: tombstone flag: False once the entry has been pruned
        oset(self, "alive", alive)
        #: cached space_bytes() while registered in a log (maintained by
        #: the owning log so _unregister never re-walks the payloads)
        oset(self, "_space", 0)

    def __setattr__(self, name: str, value: Any) -> None:
        # ``key`` and ``result`` are assigned by the dispatcher *after*
        # the entry is in the log (key_from_result, completion); route
        # those through the owning log so the per-key index and the
        # incremental space accounting stay exact.
        log = self._log
        if log is not None:
            if name == "key":
                log._rekey(self, value)
                return
            if name == "result":
                log._reresult(self, value)
                return
        object.__setattr__(self, name, value)

    def __getstate__(self) -> Dict[str, Any]:
        # Copies/pickles detach from the owning log: the copy is not in
        # any log's index, so routing its late assignments through one
        # would corrupt accounting.
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_log"}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        oset = object.__setattr__
        oset(self, "_log", None)
        for name, value in state.items():
            oset(self, name, value)

    @property
    def is_synthetic(self) -> bool:
        return self.synthetic_patch is not None

    def entry_count(self) -> int:
        """How many log records this entry holds (call + retvals)."""
        return 1 + len(self.nested)

    def space_bytes(self) -> int:
        """This entry's contribution to the Fig. 7b space accounting."""
        total = 64 + _payload_bytes(self.args) + _payload_bytes(self.result)
        for record in self.nested:
            total += 64 + _payload_bytes(record.result)
        return total


class ComponentCallLog:
    """The per-component slice of the message domain's logs."""

    #: compact the tombstoned entry list once the dead outnumber the
    #: live beyond this floor (amortised O(1) per prune)
    _COMPACT_FLOOR = 32

    def __init__(self, component: str) -> None:
        self.component = component
        #: append-ordered entries, including tombstones (see `entries`)
        self._entries: List[CallLogEntry] = []
        self._dead = 0
        #: per-key index over live entries (may hold stale references
        #: that `entries_for_key` lazily compacts away)
        self._by_key: Dict[Any, List[CallLogEntry]] = {}
        #: live entries per key / count of keys with >= 2 live entries
        self._key_live: Dict[Any, int] = {}
        self._multi_keys = 0
        # incremental accounting (kept equal to a full recompute)
        self._live_count = 0
        self._record_count = 0
        self._space_bytes = 0
        self._seq = itertools.count(1)
        #: caller->target call edges: live return-value records per
        #: callee, maintained incrementally on append/tombstone so the
        #: recovery planner reads the dependency graph off the hot path
        self._edge_counts: Dict[str, int] = {}
        #: entries currently being executed (innermost last); outbound
        #: retvals attach to the innermost active entry
        self._active: List[CallLogEntry] = []
        # lifetime counters for the experiments
        self.total_appended = 0
        self.total_pruned = 0
        self.total_retvals = 0

    # --- recording --------------------------------------------------------------

    def append(self, func: str, args: Tuple[Any, ...],
               kwargs: Dict[str, Any], key: Any = None,
               session_opener: bool = False,
               canceling: bool = False,
               durable: bool = False) -> CallLogEntry:
        entry = CallLogEntry(
            seq=next(self._seq),
            func=func,
            args=_copy_payload(args),
            kwargs=_copy_kwargs(kwargs) if kwargs else {},
            key=key,
            session_opener=session_opener,
            canceling=canceling,
            durable=durable,
        )
        # Inlined _register, specialised for a fresh entry: alive is
        # already True, nested is empty and result is None, so the
        # space walk collapses to 64 (header) + 8 (None result) + the
        # args price and the record count to exactly 1.
        self._entries.append(entry)
        object.__setattr__(entry, "_log", self)
        if key is not None:
            self._index_add(key, entry)
        self._live_count += 1
        self._record_count += 1
        space = 72 + _payload_bytes(entry.args)
        object.__setattr__(entry, "_space", space)
        self._space_bytes += space
        self.total_appended += 1
        return entry

    def adopt(self, entry: CallLogEntry) -> CallLogEntry:
        """Append an externally built entry (e.g. a synthetic one from
        :meth:`make_synthetic`) with full index + accounting."""
        self._register(entry)
        self.total_appended += 1
        return entry

    def push_active(self, entry: CallLogEntry) -> None:
        self._active.append(entry)

    def pop_active(self, entry: CallLogEntry) -> None:
        """Close the innermost active entry.

        The active stack mirrors the dispatcher's call nesting exactly
        (push/pop happen in paired try/finally blocks); a mismatch
        means nested return values are being attributed to the wrong
        entry — recovery data corruption — so it is a hard error rather
        than a silent no-op.
        """
        if not self._active or self._active[-1] is not entry:
            innermost = (f"{self._active[-1].func!r} "
                         f"seq={self._active[-1].seq}"
                         if self._active else "<none>")
            raise RuntimeError(
                f"call-log corruption in {self.component!r}: "
                f"pop_active({entry.func!r} seq={entry.seq}) does not "
                f"match the innermost active entry ({innermost})")
        self._active.pop()

    @property
    def active_entry(self) -> Optional[CallLogEntry]:
        return self._active[-1] if self._active else None

    def record_retval(self, target: str, func: str, result: Any = None,
                      error: Optional[Tuple[str, str]] = None) -> bool:
        """Attach an outbound call's outcome to the active entry.

        Returns True when a record was stored (i.e. a logged call of
        this component is currently executing).
        """
        active = self._active
        if not active:
            return False
        entry = active[-1]
        # Scalar/bytes results (the vast majority) copy by identity and
        # price trivially under every flag combination: deepcopy returns
        # the same object for atomic immutables, so the fast path is
        # exactly equivalent to _copy_payload + _payload_bytes.
        cls = result.__class__
        if result is None or cls is int or cls is float:
            copied = result
            size = 8
        elif cls is bytes:
            copied = result
            size = len(result)
        else:
            copied = _copy_payload(result)
            size = -1
        entry.nested.append(ReturnValueRecord(target, func, copied, error))
        if entry.alive:
            self._record_count += 1
            delta = 64 + (_payload_bytes(result) if size < 0 else size)
            self._space_bytes += delta
            object.__setattr__(entry, "_space", entry._space + delta)
            counts = self._edge_counts
            counts[target] = counts.get(target, 0) + 1
        self.total_retvals += 1
        return True

    def clear_nested(self, entry: CallLogEntry) -> None:
        """Drop an entry's recorded return values (retry-after-reboot
        repopulates them)."""
        if entry.alive and entry.nested:
            self._record_count -= len(entry.nested)
            delta = 0
            for record in entry.nested:
                delta += 64 + _payload_bytes(record.result)
            self._space_bytes -= delta
            object.__setattr__(entry, "_space", entry._space - delta)
            self._edges_drop(entry.nested)
        entry.nested.clear()

    # --- queries -------------------------------------------------------------------

    @property
    def entries(self) -> List[CallLogEntry]:
        """The live entries, in append order (tombstones hidden)."""
        if self._dead:
            return [e for e in self._entries if e.alive]
        return list(self._entries)

    def __len__(self) -> int:
        return self._live_count

    def record_count(self) -> int:
        """Total records: call entries plus attached return values."""
        if not FLAGS.indexed_log:
            return sum(e.entry_count() for e in self.entries)
        return self._record_count

    def entries_for_key(self, key: Any) -> List[CallLogEntry]:
        if not FLAGS.indexed_log:
            return [e for e in self.entries if e.key == key]
        bucket = self._by_key.get(key)
        if not bucket:
            return []
        live = [e for e in bucket if e.alive and e.key == key]
        if len(live) != len(bucket):
            # lazily drop tombstones / rekeyed strays from the bucket
            if live:
                self._by_key[key] = list(live)
            else:
                del self._by_key[key]
        return live

    def live_keys(self) -> List[Any]:
        """Keys with at least one live entry, oldest key first."""
        return list(self._key_live)

    def call_edges(self) -> Dict[str, int]:
        """Outbound call edges of this component: callee name -> number
        of live return-value records targeting it.

        This is the recovery planner's raw dependency data ("this
        component's logged history calls into those components"), kept
        incrementally so reading it is O(edges), never O(log).
        """
        if not FLAGS.indexed_log:
            counts: Dict[str, int] = {}
            for entry in self.entries:
                for record in entry.nested:
                    counts[record.target] = counts.get(record.target, 0) + 1
            return counts
        return dict(self._edge_counts)

    def edge_targets(self) -> List[str]:
        """Components this log's live entries call into, sorted."""
        return sorted(self.call_edges())

    def has_multi_entry_key(self) -> bool:
        """O(1): does any key hold >= 2 live entries?  (This is the
        forced-shrink `_compactable` predicate.)"""
        return self._multi_keys > 0

    def space_bytes(self) -> int:
        """Approximate log memory footprint (for Fig. 7b accounting).

        Priced per record rather than via sys.getsizeof so the number
        is deterministic across Python builds: 64 bytes of header per
        record plus the payload bytes of any byte-string arguments and
        results.  Maintained incrementally; `recompute_space_bytes`
        walks the log and must always agree.
        """
        if not FLAGS.indexed_log:
            return self.recompute_space_bytes()
        return self._space_bytes

    def recompute_space_bytes(self) -> int:
        """Reference O(n) walk (tests assert it matches the counter)."""
        return sum(e.space_bytes() for e in self._entries if e.alive)

    # --- pruning primitives (used by the shrinker) -------------------------------------

    def remove_entries(self, doomed: List[CallLogEntry]) -> int:
        removed = 0
        for entry in doomed:
            if entry.alive and entry._log is self:
                self._unregister(entry)
                removed += 1
        self.total_pruned += removed
        if self._dead > self._COMPACT_FLOOR \
                and self._dead * 2 > len(self._entries):
            self._entries = [e for e in self._entries if e.alive]
            self._dead = 0
        return removed

    def replace_entries(self, doomed: List[CallLogEntry],
                        replacement: CallLogEntry,
                        at_entry: CallLogEntry) -> None:
        """Replace ``doomed`` with ``replacement`` at the position of
        ``at_entry`` (forced shrinking)."""
        index = next(i for i, e in enumerate(self._entries)
                     if e is at_entry)  # identity, not dataclass ==
        self._register(replacement, index=index)
        self.remove_entries(doomed)

    def make_synthetic(self, key: Any, patch: Any) -> CallLogEntry:
        entry = CallLogEntry(seq=next(self._seq), func="__setstate__",
                             args=(), kwargs={}, key=key, completed=True,
                             synthetic_patch=(key, copy.deepcopy(patch)))
        self.total_appended += 1
        return entry

    def clear(self) -> None:
        """Drop the logged history (fresh restart / live update).

        Entries still on the active stack survive: they describe calls
        that are mid-dispatch, whose paired push/pop bookkeeping the
        dispatcher still owns and whose retry executes against the new
        baseline — so they re-seed the emptied log instead of vanishing
        from the recovery history.
        """
        survivors = list(self._active)
        keep = {id(entry) for entry in survivors}
        for entry in self._entries:
            if id(entry) in keep:
                continue
            if entry.alive:
                object.__setattr__(entry, "alive", False)
            object.__setattr__(entry, "_log", None)
        self._entries.clear()
        self._dead = 0
        self._by_key.clear()
        self._key_live.clear()
        self._multi_keys = 0
        self._live_count = 0
        self._record_count = 0
        self._space_bytes = 0
        self._edge_counts.clear()
        for entry in survivors:
            self._register(entry)

    # --- index + accounting internals -----------------------------------------------

    def _register(self, entry: CallLogEntry,
                  index: Optional[int] = None) -> None:
        object.__setattr__(entry, "alive", True)
        if index is None:
            self._entries.append(entry)
        else:
            self._entries.insert(index, entry)
        object.__setattr__(entry, "_log", self)
        if entry.key is not None:
            self._index_add(entry.key, entry)
        self._live_count += 1
        self._record_count += entry.entry_count()
        space = entry.space_bytes()
        object.__setattr__(entry, "_space", space)
        self._space_bytes += space
        if entry.nested:
            counts = self._edge_counts
            for record in entry.nested:
                counts[record.target] = counts.get(record.target, 0) + 1

    def _unregister(self, entry: CallLogEntry) -> None:
        object.__setattr__(entry, "alive", False)
        self._dead += 1
        if entry.key is not None:
            self._index_drop(entry.key)
        self._live_count -= 1
        self._record_count -= entry.entry_count()
        # entry._space tracks every registered-lifetime mutation
        # (result assignment, nested retvals), so no payload re-walk
        self._space_bytes -= entry._space
        if entry.nested:
            self._edges_drop(entry.nested)

    def _edges_drop(self, records: List[ReturnValueRecord]) -> None:
        counts = self._edge_counts
        for record in records:
            remaining = counts.get(record.target, 0) - 1
            if remaining > 0:
                counts[record.target] = remaining
            else:
                counts.pop(record.target, None)

    def _index_add(self, key: Any, entry: CallLogEntry) -> None:
        self._by_key.setdefault(key, []).append(entry)
        count = self._key_live.get(key, 0) + 1
        self._key_live[key] = count
        if count == 2:
            self._multi_keys += 1

    def _index_drop(self, key: Any) -> None:
        count = self._key_live.get(key, 0) - 1
        if count <= 0:
            self._key_live.pop(key, None)
            self._by_key.pop(key, None)
        else:
            self._key_live[key] = count
        if count == 1:
            self._multi_keys -= 1

    def _rekey(self, entry: CallLogEntry, new_key: Any) -> None:
        """Re-index an entry whose ``key`` is assigned after append
        (the dispatcher's key_from_result path)."""
        old_key = entry.key
        if new_key == old_key:
            return
        object.__setattr__(entry, "key", new_key)
        if not entry.alive:
            return
        if old_key is not None:
            self._index_drop(old_key)
        if new_key is not None:
            self._index_add(new_key, entry)

    def _reresult(self, entry: CallLogEntry, result: Any) -> None:
        """Track the space delta when ``result`` is assigned late."""
        old = entry.result
        object.__setattr__(entry, "result", result)
        if entry.alive:
            delta = _payload_bytes(result) - _payload_bytes(old)
            if delta:
                self._space_bytes += delta
                object.__setattr__(entry, "_space", entry._space + delta)


# --- payload helpers -------------------------------------------------------------

# The immutability check (`_is_immutable`) is shared with the snapshot
# store's state-blob fast path; the canonical implementation lives in
# repro.fastpath and is imported at the top of this module.


def _copy_payload(value: Any) -> Any:
    """The copy fast path: immutable payloads (None/bool/int/float/str/
    bytes and tuples thereof — the vast majority of logged syscall
    arguments) need no defensive copy; everything else deep-copies
    exactly as before.

    With ``FLAGS.interned_payloads``, repeated immutable argument
    tuples additionally share one canonical logged blob.  The blob key
    carries a recursive type fingerprint: ``(1,) == (True,)`` but they
    are distinguishable payloads, so equality alone must not let one
    stand in for the other.
    """
    if FLAGS.copy_fast_path:
        if _is_immutable(value):
            if FLAGS.interned_payloads and type(value) is tuple and value:
                key = (value, type_fingerprint(value))
                canonical = _BLOBS.get(key)
                if canonical is not None:
                    return canonical
                if len(_BLOBS) >= HANDLE_CACHE_LIMIT:
                    _BLOBS.clear()
                _BLOBS[key] = value
            return value
        if type(value) is dict \
                and all(_is_immutable(v) for v in value.values()):
            # a flat dict of immutables needs only a fresh top-level
            # dict — mutation-safety matches the deep copy
            return dict(value)
    return copy.deepcopy(value)


def _copy_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    if not kwargs:
        return {}
    if FLAGS.copy_fast_path \
            and all(_is_immutable(v) for v in kwargs.values()):
        return dict(kwargs)
    return copy.deepcopy(kwargs)


def _payload_bytes(value: Any) -> int:
    """Log-space price of one payload.

    str and immutable-tuple prices are answered from a content-keyed
    cache when ``FLAGS.interned_payloads`` is on: the price depends
    only on content, and within the immutable family equal values
    always price identically (str only equals str; the scalar types
    whose equality crosses type boundaries all price at 8 and never
    reach the cache).

    Dispatches on the exact class first (every real payload is a
    built-in); subclasses take the original ``isinstance`` chain in
    :func:`_payload_bytes_slow` with identical pricing.
    """
    cls = value.__class__
    if cls is bytes:
        return len(value)
    if cls is str:
        # encoded byte length, not character count (a str payload costs
        # what its UTF-8 serialisation occupies)
        if not FLAGS.interned_payloads:
            return len(value.encode("utf-8"))
        size = _LOG_BYTES.get(value)
        if size is None:
            size = len(value.encode("utf-8"))
            if len(_LOG_BYTES) >= HANDLE_CACHE_LIMIT:
                _LOG_BYTES.clear()
            _LOG_BYTES[value] = size
        return size
    if cls is tuple:
        if FLAGS.interned_payloads and value:
            try:
                size = _LOG_BYTES.get(value)
            except TypeError:  # unhashable element: compute directly
                return sum(map(_payload_bytes, value))
            if size is None:
                size = sum(map(_payload_bytes, value))
                if _is_immutable(value):
                    if len(_LOG_BYTES) >= HANDLE_CACHE_LIMIT:
                        _LOG_BYTES.clear()
                    _LOG_BYTES[value] = size
            return size
        return sum(map(_payload_bytes, value))
    if cls is list:
        return sum(map(_payload_bytes, value))
    if cls is dict:
        return sum(map(_payload_bytes, value.values()))
    if value is None or cls is int or cls is float or cls is bool:
        return 8
    return _payload_bytes_slow(value)


def _payload_bytes_slow(value: Any) -> int:
    """Subclass / oddball pricing — the original ``isinstance`` chain."""
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return sum(map(_payload_bytes, value))
    if isinstance(value, dict):
        return sum(map(_payload_bytes, value.values()))
    return 8
