"""Function-call and return-value logs (Fig. 4, §V-B).

The message domain keeps, per stateful component, a log of the calls
*into* the component (the function-call log) and, attached to each such
entry, the return values of the calls the component made *out* while
executing it (the return-value log).  Encapsulated restoration replays
the call log and answers the outbound calls from the attached return
values instead of executing them, so the running components never see
the restoration (Fig. 3).

Entries deep-copy arguments and results: the log must stay valid even
if the caller later mutates the objects it passed (and a faulty
component must not be able to corrupt its own recovery data — in the
paper the logs live in the message domain behind their own MPK tag for
exactly this reason).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class ReturnValueRecord:
    """One outbound call's outcome, recorded for replay interception."""

    target: str
    func: str
    result: Any = None
    #: (errno, message) when the call raised a SyscallError; replay
    #: re-raises it so the component takes the same path again
    error: Optional[Tuple[str, str]] = None


@dataclass
class CallLogEntry:
    """One logged inbound call."""

    seq: int
    func: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    #: session key (fd / fid / socket id) for session-aware shrinking
    key: Any = None
    result: Any = None
    #: whether this entry opens a session for its key (open/socket)
    session_opener: bool = False
    #: whether this entry is a canceling function (close)
    canceling: bool = False
    #: durable entries hold data the component itself stores (§V-F
    #: caveat); canceling prunes skip them
    durable: bool = False
    #: return values of the component's outbound calls during this call
    nested: List[ReturnValueRecord] = field(default_factory=list)
    #: forced-shrink synthetic entry: apply this state patch instead of
    #: replaying pruned per-key operations
    synthetic_patch: Optional[Tuple[Any, Any]] = None
    #: False while the call is still executing; replay skips in-flight
    #: entries (their nested retvals are partial)
    completed: bool = False

    @property
    def is_synthetic(self) -> bool:
        return self.synthetic_patch is not None

    def entry_count(self) -> int:
        """How many log records this entry holds (call + retvals)."""
        return 1 + len(self.nested)


class ComponentCallLog:
    """The per-component slice of the message domain's logs."""

    def __init__(self, component: str) -> None:
        self.component = component
        self.entries: List[CallLogEntry] = []
        self._seq = itertools.count(1)
        #: entries currently being executed (innermost last); outbound
        #: retvals attach to the innermost active entry
        self._active: List[CallLogEntry] = []
        # lifetime counters for the experiments
        self.total_appended = 0
        self.total_pruned = 0
        self.total_retvals = 0

    # --- recording --------------------------------------------------------------

    def append(self, func: str, args: Tuple[Any, ...],
               kwargs: Dict[str, Any], key: Any = None,
               session_opener: bool = False,
               canceling: bool = False,
               durable: bool = False) -> CallLogEntry:
        entry = CallLogEntry(
            seq=next(self._seq),
            func=func,
            args=copy.deepcopy(args),
            kwargs=copy.deepcopy(kwargs),
            key=key,
            session_opener=session_opener,
            canceling=canceling,
            durable=durable,
        )
        self.entries.append(entry)
        self.total_appended += 1
        return entry

    def push_active(self, entry: CallLogEntry) -> None:
        self._active.append(entry)

    def pop_active(self, entry: CallLogEntry) -> None:
        if self._active and self._active[-1] is entry:
            self._active.pop()

    @property
    def active_entry(self) -> Optional[CallLogEntry]:
        return self._active[-1] if self._active else None

    def record_retval(self, target: str, func: str, result: Any = None,
                      error: Optional[Tuple[str, str]] = None) -> bool:
        """Attach an outbound call's outcome to the active entry.

        Returns True when a record was stored (i.e. a logged call of
        this component is currently executing).
        """
        entry = self.active_entry
        if entry is None:
            return False
        entry.nested.append(ReturnValueRecord(
            target=target, func=func,
            result=copy.deepcopy(result), error=error))
        self.total_retvals += 1
        return True

    # --- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def record_count(self) -> int:
        """Total records: call entries plus attached return values."""
        return sum(e.entry_count() for e in self.entries)

    def entries_for_key(self, key: Any) -> List[CallLogEntry]:
        return [e for e in self.entries if e.key == key]

    def space_bytes(self) -> int:
        """Approximate log memory footprint (for Fig. 7b accounting).

        Priced per record rather than via sys.getsizeof so the number
        is deterministic across Python builds: 64 bytes of header per
        record plus the payload bytes of any byte-string arguments and
        results.
        """
        total = 0
        for entry in self.entries:
            total += 64 + _payload_bytes(entry.args) \
                + _payload_bytes(entry.result)
            for record in entry.nested:
                total += 64 + _payload_bytes(record.result)
        return total

    # --- pruning primitives (used by the shrinker) -------------------------------------

    def remove_entries(self, doomed: List[CallLogEntry]) -> int:
        if not doomed:
            return 0
        doomed_ids = {id(e) for e in doomed}
        kept = [e for e in self.entries if id(e) not in doomed_ids]
        removed = len(self.entries) - len(kept)
        self.entries = kept
        self.total_pruned += removed
        return removed

    def replace_entries(self, doomed: List[CallLogEntry],
                        replacement: CallLogEntry,
                        at_entry: CallLogEntry) -> None:
        """Replace ``doomed`` with ``replacement`` at the position of
        ``at_entry`` (forced shrinking)."""
        doomed_ids = {id(e) for e in doomed}
        out: List[CallLogEntry] = []
        for entry in self.entries:
            if entry is at_entry:
                out.append(replacement)
            if id(entry) not in doomed_ids:
                out.append(entry)
        self.total_pruned += len(self.entries) - (len(out) - 1)
        self.entries = out

    def make_synthetic(self, key: Any, patch: Any) -> CallLogEntry:
        entry = CallLogEntry(seq=next(self._seq), func="__setstate__",
                             args=(), kwargs={}, key=key, completed=True,
                             synthetic_patch=(key, copy.deepcopy(patch)))
        self.total_appended += 1
        return entry

    def clear(self) -> None:
        self.entries.clear()
        self._active.clear()


def _payload_bytes(value: Any) -> int:
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(v) for v in value)
    if isinstance(value, dict):
        return sum(_payload_bytes(v) for v in value.values())
    return 8
