"""Function-call and return-value logs (Fig. 4, §V-B).

The message domain keeps, per stateful component, a log of the calls
*into* the component (the function-call log) and, attached to each such
entry, the return values of the calls the component made *out* while
executing it (the return-value log).  Encapsulated restoration replays
the call log and answers the outbound calls from the attached return
values instead of executing them, so the running components never see
the restoration (Fig. 3).

Entries deep-copy arguments and results: the log must stay valid even
if the caller later mutates the objects it passed (and a faulty
component must not be able to corrupt its own recovery data — in the
paper the logs live in the message domain behind their own MPK tag for
exactly this reason).  Immutable payloads (the vast majority of logged
syscall arguments) are stored by reference instead — mutation-safety
holds trivially and the copy is free.

Hot-path data structures (see DESIGN.md, "Fast-path invariants"):

* ``self._entries`` holds every entry in append order, with pruned
  entries tombstoned (``entry.alive = False``) and compacted away once
  they outnumber the live ones; the public ``entries`` view exposes
  only live entries.
* ``self._by_key`` indexes live entries per session key, so the
  shrinker's per-key queries cost O(entries for that key) instead of
  O(log length).
* ``space_bytes()`` / ``record_count()`` are maintained incrementally
  on append / prune / retval-attach instead of walking the log.  A
  ``CallLogEntry`` notifies its owning log when its ``key`` or
  ``result`` is assigned after append (the dispatcher does both), so
  the index and the accounting never go stale.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..fastpath import FLAGS
from ..fastpath import IMMUTABLE_SCALARS as _IMMUTABLE_SCALARS  # noqa: F401
from ..fastpath import is_immutable as _is_immutable


@dataclass
class ReturnValueRecord:
    """One outbound call's outcome, recorded for replay interception."""

    target: str
    func: str
    result: Any = None
    #: (errno, message) when the call raised a SyscallError; replay
    #: re-raises it so the component takes the same path again
    error: Optional[Tuple[str, str]] = None


@dataclass
class CallLogEntry:
    """One logged inbound call."""

    seq: int
    func: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    #: session key (fd / fid / socket id) for session-aware shrinking
    key: Any = None
    result: Any = None
    #: whether this entry opens a session for its key (open/socket)
    session_opener: bool = False
    #: whether this entry is a canceling function (close)
    canceling: bool = False
    #: durable entries hold data the component itself stores (§V-F
    #: caveat); canceling prunes skip them
    durable: bool = False
    #: return values of the component's outbound calls during this call
    nested: List[ReturnValueRecord] = field(default_factory=list)
    #: forced-shrink synthetic entry: apply this state patch instead of
    #: replaying pruned per-key operations
    synthetic_patch: Optional[Tuple[Any, Any]] = None
    #: False while the call is still executing; replay skips in-flight
    #: entries (their nested retvals are partial)
    completed: bool = False
    #: tombstone flag: False once the entry has been pruned
    alive: bool = True

    def __setattr__(self, name: str, value: Any) -> None:
        # ``key`` and ``result`` are assigned by the dispatcher *after*
        # the entry is in the log (key_from_result, completion); route
        # those through the owning log so the per-key index and the
        # incremental space accounting stay exact.
        log = self.__dict__.get("_log")
        if log is not None:
            if name == "key":
                log._rekey(self, value)
                return
            if name == "result":
                log._reresult(self, value)
                return
        object.__setattr__(self, name, value)

    @property
    def is_synthetic(self) -> bool:
        return self.synthetic_patch is not None

    def entry_count(self) -> int:
        """How many log records this entry holds (call + retvals)."""
        return 1 + len(self.nested)

    def space_bytes(self) -> int:
        """This entry's contribution to the Fig. 7b space accounting."""
        total = 64 + _payload_bytes(self.args) + _payload_bytes(self.result)
        for record in self.nested:
            total += 64 + _payload_bytes(record.result)
        return total


class ComponentCallLog:
    """The per-component slice of the message domain's logs."""

    #: compact the tombstoned entry list once the dead outnumber the
    #: live beyond this floor (amortised O(1) per prune)
    _COMPACT_FLOOR = 32

    def __init__(self, component: str) -> None:
        self.component = component
        #: append-ordered entries, including tombstones (see `entries`)
        self._entries: List[CallLogEntry] = []
        self._dead = 0
        #: per-key index over live entries (may hold stale references
        #: that `entries_for_key` lazily compacts away)
        self._by_key: Dict[Any, List[CallLogEntry]] = {}
        #: live entries per key / count of keys with >= 2 live entries
        self._key_live: Dict[Any, int] = {}
        self._multi_keys = 0
        # incremental accounting (kept equal to a full recompute)
        self._live_count = 0
        self._record_count = 0
        self._space_bytes = 0
        self._seq = itertools.count(1)
        #: entries currently being executed (innermost last); outbound
        #: retvals attach to the innermost active entry
        self._active: List[CallLogEntry] = []
        # lifetime counters for the experiments
        self.total_appended = 0
        self.total_pruned = 0
        self.total_retvals = 0

    # --- recording --------------------------------------------------------------

    def append(self, func: str, args: Tuple[Any, ...],
               kwargs: Dict[str, Any], key: Any = None,
               session_opener: bool = False,
               canceling: bool = False,
               durable: bool = False) -> CallLogEntry:
        entry = CallLogEntry(
            seq=next(self._seq),
            func=func,
            args=_copy_payload(args),
            kwargs=_copy_kwargs(kwargs),
            key=key,
            session_opener=session_opener,
            canceling=canceling,
            durable=durable,
        )
        self._register(entry)
        self.total_appended += 1
        return entry

    def adopt(self, entry: CallLogEntry) -> CallLogEntry:
        """Append an externally built entry (e.g. a synthetic one from
        :meth:`make_synthetic`) with full index + accounting."""
        self._register(entry)
        self.total_appended += 1
        return entry

    def push_active(self, entry: CallLogEntry) -> None:
        self._active.append(entry)

    def pop_active(self, entry: CallLogEntry) -> None:
        """Close the innermost active entry.

        The active stack mirrors the dispatcher's call nesting exactly
        (push/pop happen in paired try/finally blocks); a mismatch
        means nested return values are being attributed to the wrong
        entry — recovery data corruption — so it is a hard error rather
        than a silent no-op.
        """
        if not self._active or self._active[-1] is not entry:
            innermost = (f"{self._active[-1].func!r} "
                         f"seq={self._active[-1].seq}"
                         if self._active else "<none>")
            raise RuntimeError(
                f"call-log corruption in {self.component!r}: "
                f"pop_active({entry.func!r} seq={entry.seq}) does not "
                f"match the innermost active entry ({innermost})")
        self._active.pop()

    @property
    def active_entry(self) -> Optional[CallLogEntry]:
        return self._active[-1] if self._active else None

    def record_retval(self, target: str, func: str, result: Any = None,
                      error: Optional[Tuple[str, str]] = None) -> bool:
        """Attach an outbound call's outcome to the active entry.

        Returns True when a record was stored (i.e. a logged call of
        this component is currently executing).
        """
        entry = self.active_entry
        if entry is None:
            return False
        entry.nested.append(ReturnValueRecord(
            target=target, func=func,
            result=_copy_payload(result), error=error))
        if entry.alive:
            self._record_count += 1
            self._space_bytes += 64 + _payload_bytes(result)
        self.total_retvals += 1
        return True

    def clear_nested(self, entry: CallLogEntry) -> None:
        """Drop an entry's recorded return values (retry-after-reboot
        repopulates them)."""
        if entry.alive and entry.nested:
            self._record_count -= len(entry.nested)
            for record in entry.nested:
                self._space_bytes -= 64 + _payload_bytes(record.result)
        entry.nested.clear()

    # --- queries -------------------------------------------------------------------

    @property
    def entries(self) -> List[CallLogEntry]:
        """The live entries, in append order (tombstones hidden)."""
        if self._dead:
            return [e for e in self._entries if e.alive]
        return list(self._entries)

    def __len__(self) -> int:
        return self._live_count

    def record_count(self) -> int:
        """Total records: call entries plus attached return values."""
        if not FLAGS.indexed_log:
            return sum(e.entry_count() for e in self.entries)
        return self._record_count

    def entries_for_key(self, key: Any) -> List[CallLogEntry]:
        if not FLAGS.indexed_log:
            return [e for e in self.entries if e.key == key]
        bucket = self._by_key.get(key)
        if not bucket:
            return []
        live = [e for e in bucket if e.alive and e.key == key]
        if len(live) != len(bucket):
            # lazily drop tombstones / rekeyed strays from the bucket
            if live:
                self._by_key[key] = list(live)
            else:
                del self._by_key[key]
        return live

    def live_keys(self) -> List[Any]:
        """Keys with at least one live entry, oldest key first."""
        return list(self._key_live)

    def has_multi_entry_key(self) -> bool:
        """O(1): does any key hold >= 2 live entries?  (This is the
        forced-shrink `_compactable` predicate.)"""
        return self._multi_keys > 0

    def space_bytes(self) -> int:
        """Approximate log memory footprint (for Fig. 7b accounting).

        Priced per record rather than via sys.getsizeof so the number
        is deterministic across Python builds: 64 bytes of header per
        record plus the payload bytes of any byte-string arguments and
        results.  Maintained incrementally; `recompute_space_bytes`
        walks the log and must always agree.
        """
        if not FLAGS.indexed_log:
            return self.recompute_space_bytes()
        return self._space_bytes

    def recompute_space_bytes(self) -> int:
        """Reference O(n) walk (tests assert it matches the counter)."""
        return sum(e.space_bytes() for e in self._entries if e.alive)

    # --- pruning primitives (used by the shrinker) -------------------------------------

    def remove_entries(self, doomed: List[CallLogEntry]) -> int:
        removed = 0
        for entry in doomed:
            if entry.alive and entry.__dict__.get("_log") is self:
                self._unregister(entry)
                removed += 1
        self.total_pruned += removed
        if self._dead > self._COMPACT_FLOOR \
                and self._dead * 2 > len(self._entries):
            self._entries = [e for e in self._entries if e.alive]
            self._dead = 0
        return removed

    def replace_entries(self, doomed: List[CallLogEntry],
                        replacement: CallLogEntry,
                        at_entry: CallLogEntry) -> None:
        """Replace ``doomed`` with ``replacement`` at the position of
        ``at_entry`` (forced shrinking)."""
        index = next(i for i, e in enumerate(self._entries)
                     if e is at_entry)  # identity, not dataclass ==
        self._register(replacement, index=index)
        self.remove_entries(doomed)

    def make_synthetic(self, key: Any, patch: Any) -> CallLogEntry:
        entry = CallLogEntry(seq=next(self._seq), func="__setstate__",
                             args=(), kwargs={}, key=key, completed=True,
                             synthetic_patch=(key, copy.deepcopy(patch)))
        self.total_appended += 1
        return entry

    def clear(self) -> None:
        """Drop the logged history (fresh restart / live update).

        Entries still on the active stack survive: they describe calls
        that are mid-dispatch, whose paired push/pop bookkeeping the
        dispatcher still owns and whose retry executes against the new
        baseline — so they re-seed the emptied log instead of vanishing
        from the recovery history.
        """
        survivors = list(self._active)
        keep = {id(entry) for entry in survivors}
        for entry in self._entries:
            if id(entry) in keep:
                continue
            if entry.alive:
                object.__setattr__(entry, "alive", False)
            entry.__dict__.pop("_log", None)
        self._entries.clear()
        self._dead = 0
        self._by_key.clear()
        self._key_live.clear()
        self._multi_keys = 0
        self._live_count = 0
        self._record_count = 0
        self._space_bytes = 0
        for entry in survivors:
            self._register(entry)

    # --- index + accounting internals -----------------------------------------------

    def _register(self, entry: CallLogEntry,
                  index: Optional[int] = None) -> None:
        object.__setattr__(entry, "alive", True)
        if index is None:
            self._entries.append(entry)
        else:
            self._entries.insert(index, entry)
        entry.__dict__["_log"] = self
        if entry.key is not None:
            self._index_add(entry.key, entry)
        self._live_count += 1
        self._record_count += entry.entry_count()
        self._space_bytes += entry.space_bytes()

    def _unregister(self, entry: CallLogEntry) -> None:
        object.__setattr__(entry, "alive", False)
        self._dead += 1
        if entry.key is not None:
            self._index_drop(entry.key)
        self._live_count -= 1
        self._record_count -= entry.entry_count()
        self._space_bytes -= entry.space_bytes()

    def _index_add(self, key: Any, entry: CallLogEntry) -> None:
        self._by_key.setdefault(key, []).append(entry)
        count = self._key_live.get(key, 0) + 1
        self._key_live[key] = count
        if count == 2:
            self._multi_keys += 1

    def _index_drop(self, key: Any) -> None:
        count = self._key_live.get(key, 0) - 1
        if count <= 0:
            self._key_live.pop(key, None)
            self._by_key.pop(key, None)
        else:
            self._key_live[key] = count
        if count == 1:
            self._multi_keys -= 1

    def _rekey(self, entry: CallLogEntry, new_key: Any) -> None:
        """Re-index an entry whose ``key`` is assigned after append
        (the dispatcher's key_from_result path)."""
        old_key = entry.__dict__.get("key")
        if new_key == old_key:
            return
        object.__setattr__(entry, "key", new_key)
        if not entry.alive:
            return
        if old_key is not None:
            self._index_drop(old_key)
        if new_key is not None:
            self._index_add(new_key, entry)

    def _reresult(self, entry: CallLogEntry, result: Any) -> None:
        """Track the space delta when ``result`` is assigned late."""
        old = entry.__dict__.get("result")
        object.__setattr__(entry, "result", result)
        if entry.alive:
            self._space_bytes += _payload_bytes(result) - _payload_bytes(old)


# --- payload helpers -------------------------------------------------------------

# The immutability check (`_is_immutable`) is shared with the snapshot
# store's state-blob fast path; the canonical implementation lives in
# repro.fastpath and is imported at the top of this module.


def _copy_payload(value: Any) -> Any:
    """The copy fast path: immutable payloads (None/bool/int/float/str/
    bytes and tuples thereof — the vast majority of logged syscall
    arguments) need no defensive copy; everything else deep-copies
    exactly as before."""
    if FLAGS.copy_fast_path and _is_immutable(value):
        return value
    return copy.deepcopy(value)


def _copy_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    if not kwargs:
        return {}
    if FLAGS.copy_fast_path \
            and all(_is_immutable(v) for v in kwargs.values()):
        return dict(kwargs)
    return copy.deepcopy(kwargs)


def _payload_bytes(value: Any) -> int:
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        # encoded byte length, not character count (a str payload costs
        # what its UTF-8 serialisation occupies)
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return sum(_payload_bytes(v) for v in value)
    if isinstance(value, dict):
        return sum(_payload_bytes(v) for v in value.values())
    return 8
