"""Proactive rejuvenation policies (§IV, §VII-D).

The paper's rejuvenation case study reboots each component one by one
every 30 seconds.  ``RejuvenationPolicy`` packages that schedule:
checked at quiescent points (between requests — rebooting a component
whose call is on the stack would not be a fail-stop recovery but a
corruption), it rotates through the rebootable components on a virtual-
time interval.

``AgingDrivenPolicy`` goes further than the paper's fixed timer: it
watches component allocators and rejuvenates when leak/fragmentation
pressure crosses a threshold — rejuvenation exactly when aging calls
for it.

Both policies leave components the recovery supervisor has degraded
(quarantined) alone: those come back through the supervisor's own
probation, and a policy reboot would cut the quarantine short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.engine import Simulation
from .runtime import RebootRecord, VampOSKernel


@dataclass
class PolicyStats:
    ticks: int = 0
    rejuvenations: int = 0
    skipped: int = 0


class RejuvenationPolicy:
    """Fixed-interval, round-robin component rejuvenation."""

    def __init__(self, kernel: VampOSKernel, interval_us: float,
                 components: Optional[Sequence[str]] = None) -> None:
        if interval_us <= 0:
            raise ValueError("interval must be positive")
        self.kernel = kernel
        self.sim: Simulation = kernel.sim
        self.interval_us = interval_us
        if components is None:
            components = [name for name in kernel.image.boot_order
                          if kernel.component(name).REBOOTABLE]
        if not components:
            raise ValueError("nothing rebootable to rejuvenate")
        for name in components:
            if not kernel.component(name).REBOOTABLE:
                raise ValueError(f"{name!r} is not rebootable")
        self.components = list(components)
        self._cursor = 0
        self._next_due_us = self.sim.clock.now_us + interval_us
        self.stats = PolicyStats()
        self.records: List[RebootRecord] = []

    def _quarantined(self, name: str) -> bool:
        supervisor = getattr(self.kernel, "supervisor", None)
        return supervisor is not None and supervisor.is_degraded(name)

    @property
    def next_due_us(self) -> float:
        return self._next_due_us

    def due(self) -> bool:
        return self.sim.clock.now_us >= self._next_due_us

    def tick(self) -> Optional[RebootRecord]:
        """Call at a quiescent point; rejuvenates when the interval has
        elapsed.  Returns the reboot record, or None when not due."""
        self.stats.ticks += 1
        if not self.due():
            self.stats.skipped += 1
            return None
        target = None
        for _ in range(len(self.components)):
            candidate = self.components[self._cursor % len(self.components)]
            self._cursor += 1
            if not self._quarantined(candidate):
                target = candidate
                break
        if target is None:
            # Everything on the rotation is quarantined; try again
            # next interval.
            self.stats.skipped += 1
            self._next_due_us = self.sim.clock.now_us + self.interval_us
            return None
        record = self.kernel.rejuvenate(target)
        self.records.append(record)
        self.stats.rejuvenations += 1
        # Schedule from *now* so a late tick does not cause a burst.
        self._next_due_us = self.sim.clock.now_us + self.interval_us
        return record

    def run_full_cycle(self) -> List[RebootRecord]:
        """Rejuvenate every (non-quarantined) component once, now."""
        records = []
        for _ in range(len(self.components)):
            target = self.components[self._cursor % len(self.components)]
            self._cursor += 1
            if self._quarantined(target):
                continue
            records.append(self.kernel.rejuvenate(target))
        self.records.extend(records)
        self.stats.rejuvenations += len(records)
        self._next_due_us = self.sim.clock.now_us + self.interval_us
        return records


class AgingDrivenPolicy:
    """Rejuvenate a component when its allocator shows aging pressure.

    Pressure is ``leaked_bytes / arena`` plus a fragmentation term;
    crossing ``threshold`` (0..1) triggers the reboot.  This is the
    reactive counterpart to the paper's fixed timer: no wasted reboots
    while the component is healthy, bounded staleness when it leaks.
    """

    def __init__(self, kernel: VampOSKernel, threshold: float = 0.5,
                 components: Optional[Sequence[str]] = None) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.kernel = kernel
        self.threshold = threshold
        if components is None:
            components = [name for name in kernel.image.boot_order
                          if kernel.component(name).REBOOTABLE]
        self.components = list(components)
        self.stats = PolicyStats()
        self.records: List[RebootRecord] = []

    def _quarantined(self, name: str) -> bool:
        supervisor = getattr(self.kernel, "supervisor", None)
        return supervisor is not None and supervisor.is_degraded(name)

    def pressure(self, name: str) -> float:
        allocator = self.kernel.component(name).allocator
        leak_share = allocator.leaked_bytes() / allocator.arena_bytes
        used_share = allocator.used_bytes() / allocator.arena_bytes
        frag = allocator.fragmentation()
        return min(1.0, leak_share + 0.25 * frag * used_share)

    def tick(self) -> List[RebootRecord]:
        """Rejuvenate every component whose pressure crossed the bar."""
        self.stats.ticks += 1
        fired: List[RebootRecord] = []
        for name in self.components:
            if self._quarantined(name):
                continue
            if self.pressure(name) >= self.threshold:
                record = self.kernel.rejuvenate(name)
                fired.append(record)
                self.stats.rejuvenations += 1
        if not fired:
            self.stats.skipped += 1
        self.records.extend(fired)
        return fired
