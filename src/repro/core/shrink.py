"""Session-aware log shrinking (§V-F).

Two mechanisms keep the function-call logs bounded:

1. **Canceling functions.**  When a canceling call (``close()``-like)
   executes on session key *k*, the data operations on *k* (reads,
   writes, seeks…) become unnecessary for restoration and are pruned.
   The opener/close pair itself survives until the key is *reused*: a
   new session opener on *k* prunes the stale pair (this is the ``-1``
   net growth of ``open()`` in Table III).

2. **Threshold-triggered forced shrinking.**  When a log exceeds the
   threshold (default 100 entries, §VI), VampOS takes "the same or
   similar effect as forcing components to invoke canceling functions":
   the per-key operation series collapses into one synthetic entry
   holding the key's current state (extracted from the component),
   which replay re-installs directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.engine import Simulation
from ..unikernel.component import Component
from .calllog import CallLogEntry, ComponentCallLog
from ..fastpath import FLAGS

DEFAULT_SHRINK_THRESHOLD = 100


@dataclass
class ShrinkStats:
    canceling_prunes: int = 0
    pair_prunes: int = 0
    forced_shrinks: int = 0
    entries_removed: int = 0
    synthetic_entries: int = 0


class LogShrinker:
    """Applies both shrinking mechanisms to one component's log."""

    def __init__(self, sim: Simulation, component: Component,
                 log: ComponentCallLog,
                 threshold: int = DEFAULT_SHRINK_THRESHOLD,
                 enabled: bool = True) -> None:
        self.sim = sim
        self.component = component
        self.log = log
        self.threshold = threshold
        self.enabled = enabled
        self.stats = ShrinkStats()

    # --- hook called after each logged call completes -------------------------------

    def on_entry_complete(self, entry: CallLogEntry) -> None:
        if not self.enabled:
            return
        if entry.key is not None and not entry.session_opener \
                and not entry.canceling \
                and self.component.entry_is_state_neutral(entry.func,
                                                          entry.key):
            # The call changed nothing restoration needs (e.g. socket
            # read/write): drop it on the spot (Table III's zeros).
            self.log.remove_entries([entry])
            self.stats.entries_removed += 1
            self.sim.charge("log_prune", self.sim.costs.log_prune)
            return
        if entry.canceling and entry.key is not None:
            self._prune_canceled(entry)
        if entry.session_opener and entry.key is not None:
            self._prune_stale_pair(entry)
        if len(self.log) > self.threshold and self._compactable():
            self.force_shrink()

    # --- canceling-function pruning ------------------------------------------------------

    def _entries_for_key(self, key: Any) -> List[CallLogEntry]:
        """Per-key candidates: the index makes this O(entries for the
        key); the reference mode scans the whole log as the original
        implementation did (identical result, identical charges)."""
        if FLAGS.indexed_log:
            return self.log.entries_for_key(key)
        return [e for e in self.log.entries if e.key == key]

    def _prune_canceled(self, canceling_entry: CallLogEntry) -> None:
        """Drop the data operations of the canceled session."""
        doomed = [
            e for e in self._entries_for_key(canceling_entry.key)
            if e is not canceling_entry
            and not e.session_opener
            and not e.canceling
            # synthetic entries re-establish the session state and act
            # as its opener during replay — they must survive here and
            # fall to the pair prune on key reuse instead
            and not e.is_synthetic
            # durable entries (component-held data, e.g. RAMFS writes)
            # outlive a mere session close; only a durable canceling
            # function (remove) or forced compaction may drop them
            and (not e.durable or canceling_entry.durable)
        ]
        removed = self.log.remove_entries(doomed)
        if removed:
            self.stats.canceling_prunes += 1
            self.stats.entries_removed += removed
            self.sim.charge("log_prune",
                            removed * self.sim.costs.log_prune)
            self.sim.emit("shrink", "canceled",
                          component=self.component.NAME,
                          key=canceling_entry.key, removed=removed)

    def _prune_stale_pair(self, opener_entry: CallLogEntry) -> None:
        """A reused key prunes the previous opener..canceling pair."""
        doomed = [
            e for e in self._entries_for_key(opener_entry.key)
            if e is not opener_entry
        ]
        # Only prune when the old session actually ended (a canceling
        # entry — or a synthetic tombstone from a forced shrink — is
        # present); an id collision with a *live* session cannot happen
        # under lowest-free allocation.
        if not any(e.canceling or e.is_synthetic for e in doomed):
            return
        removed = self.log.remove_entries(doomed)
        if removed:
            self.stats.pair_prunes += 1
            self.stats.entries_removed += removed
            self.sim.charge("log_prune",
                            removed * self.sim.costs.log_prune)
            self.sim.emit("shrink", "pair_pruned",
                          component=self.component.NAME,
                          key=opener_entry.key, removed=removed)

    # --- threshold-triggered forced shrinking --------------------------------------------

    def _compactable(self) -> bool:
        """Whether a forced shrink would actually remove anything.

        Re-firing the (storage-touching) forced shrink on every append
        when all keys are already down to one entry would only burn
        time; the prototype's threshold check has the same effect
        because a shrink drops the log below the threshold.

        The per-key live counts make this O(1); the reference scan is
        kept for the neutrality tests.
        """
        if FLAGS.indexed_log:
            return self.log.has_multi_entry_key()
        seen: Dict[Any, int] = {}
        for entry in self.log.entries:
            if entry.key is None:
                continue
            seen[entry.key] = seen.get(entry.key, 0) + 1
            if seen[entry.key] >= 2:
                return True
        return False

    def force_shrink(self) -> int:
        """Collapse per-key operation series into synthetic entries.

        For every key with more than one remaining entry, extract the
        key's current state from the component and replace the series
        with a single ``__setstate__`` entry positioned where the series
        ended.  Keyless entries (mount, mkdir) are untouched.  Returns
        the number of entries removed.
        """
        self.sim.charge("forced_shrink", self.sim.costs.forced_shrink)
        self.stats.forced_shrinks += 1
        by_key: Dict[Any, List[CallLogEntry]] = {}
        if FLAGS.indexed_log:
            for key in self.log.live_keys():
                series = self.log.entries_for_key(key)
                if series:
                    by_key[key] = series
        else:
            for entry in self.log.entries:
                if entry.key is not None:
                    by_key.setdefault(entry.key, []).append(entry)
        removed_total = 0
        for key, series in by_key.items():
            if len(series) < 2:
                continue
            patch = self.component.extract_key_state(key)
            if patch is None:
                # The key has no live state (session fully closed):
                # nothing to restore, drop the whole series.
                removed_total += self.log.remove_entries(series)
                continue
            synthetic = self.log.make_synthetic(key, patch)
            self.log.replace_entries(series, synthetic, at_entry=series[-1])
            removed_total += len(series)
            self.stats.synthetic_entries += 1
        self.stats.entries_removed += removed_total
        self.sim.emit("shrink", "forced", component=self.component.NAME,
                      removed=removed_total,
                      remaining=len(self.log))
        return removed_total
