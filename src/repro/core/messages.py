"""The message domain (Fig. 4).

VampOS components communicate through a shared message domain that
holds (a) the in-flight message buffers and (b) the function-call and
return-value logs, all isolated behind their own MPK tag so a faulty
component cannot corrupt its own recovery data (§V-D).

This module implements the paper's named interface —
``vo_push_msgs()`` / ``vo_pull_msgs()`` — over a byte-accounted buffer
arena inside the message-domain region.  The message thread "releases
buffers when they are used by the target component and are not needed
for the restoration": a pull releases its message's buffer immediately
(the durable copy, when the call is logged, lives in the call log, not
the message buffer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..memory.region import Region
from ..sim.engine import Simulation

#: fixed per-message header charged on top of the payload
MESSAGE_HEADER_BYTES = 48


class MessageDomainFull(Exception):
    """The message buffer arena is exhausted (undrained messages)."""


@dataclass
class Message:
    """One in-flight request or reply."""

    msg_id: int
    sender: str
    receiver: str
    func: str
    payload_bytes: int
    is_reply: bool = False
    #: flight-recorder span active when the message was pushed — the
    #: causal parent the receiving side nests its dispatch span under
    #: (None when observability is off or no span is open)
    span_id: Optional[int] = None


def payload_size(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> int:
    """Approximate wire size of a call's arguments (deterministic)."""
    total = 0
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, (bytes, bytearray, str)):
            total += len(value)
        elif isinstance(value, (list, tuple)):
            total += sum(len(v) if isinstance(v, (bytes, str)) else 8
                         for v in value)
        else:
            total += 8
    return total


class MessageDomain:
    """Buffer arena + accounting for one VampOS instance."""

    def __init__(self, sim: Simulation, region: Region) -> None:
        self.sim = sim
        self.region = region
        self._ids = itertools.count(1)
        #: msg_id -> Message for buffers not yet pulled
        self._in_flight: Dict[int, Message] = {}
        self.used_bytes = 0
        # lifetime stats
        self.pushes = 0
        self.pulls = 0
        self.peak_bytes = 0
        self.peak_in_flight = 0

    @property
    def capacity_bytes(self) -> int:
        return self.region.size_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def vo_push_msgs(self, sender: str, receiver: str, func: str,
                     args: Tuple[Any, ...] = (),
                     kwargs: Optional[Dict[str, Any]] = None,
                     is_reply: bool = False) -> Message:
        """Push a request (or a return value) into the message buffer.

        Charges the message-push cost and reserves buffer space; raises
        :class:`MessageDomainFull` if the arena cannot hold it (a real
        deployment would block the sender — in the synchronous
        simulation every message is pulled promptly, so hitting this
        means a leak).
        """
        probes = self.sim.probes
        if probes is not None:
            probes.fire("msg_push", sender=sender, receiver=receiver,
                        func=func, is_reply=is_reply)
        size = MESSAGE_HEADER_BYTES + payload_size(args, kwargs or {})
        if size > self.free_bytes:
            raise MessageDomainFull(
                f"message of {size}B does not fit "
                f"({self.used_bytes}/{self.capacity_bytes}B used)")
        self.sim.charge("msg_push", self.sim.costs.msg_push)
        message = Message(msg_id=next(self._ids), sender=sender,
                          receiver=receiver, func=func,
                          payload_bytes=size, is_reply=is_reply)
        obs = self.sim.obs
        if obs is not None:
            # The causal parent travels with the message: the receiver
            # opens its dispatch span under this id.
            message.span_id = obs.current_span_id()
            obs.inc("msgdom.pushes")
            obs.observe("msgdom.queue_depth", len(self._in_flight) + 1)
        self._in_flight[message.msg_id] = message
        self.used_bytes += size
        self.pushes += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.peak_in_flight = max(self.peak_in_flight,
                                  len(self._in_flight))
        self.region.used_bytes = self.used_bytes
        return message

    def vo_pull_msgs(self, message: Message) -> Message:
        """Pull a message out; its buffer is released immediately."""
        if message.msg_id not in self._in_flight:
            raise KeyError(f"message {message.msg_id} not in flight")
        probes = self.sim.probes
        if probes is not None:
            probes.fire("msg_pull", sender=message.sender,
                        receiver=message.receiver, func=message.func,
                        is_reply=message.is_reply)
        self.sim.charge("msg_pull", self.sim.costs.msg_pull)
        del self._in_flight[message.msg_id]
        self.used_bytes -= message.payload_bytes
        self.pulls += 1
        self.region.used_bytes = self.used_bytes
        obs = self.sim.obs
        if obs is not None:
            obs.inc("msgdom.pulls")
            obs.set_gauge("msgdom.used_bytes", self.used_bytes)
        return message

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def drop_for(self, component: str) -> int:
        """Release any buffers addressed to a component being torn down
        (part of the reboot path's cleanup)."""
        doomed = [m for m in self._in_flight.values()
                  if m.receiver == component]
        for message in doomed:
            del self._in_flight[message.msg_id]
            self.used_bytes -= message.payload_bytes
        self.region.used_bytes = self.used_bytes
        return len(doomed)
