"""The message domain (Fig. 4).

VampOS components communicate through a shared message domain that
holds (a) the in-flight message buffers and (b) the function-call and
return-value logs, all isolated behind their own MPK tag so a faulty
component cannot corrupt its own recovery data (§V-D).

This module implements the paper's named interface —
``vo_push_msgs()`` / ``vo_pull_msgs()`` — over a byte-accounted buffer
arena inside the message-domain region.  The message thread "releases
buffers when they are used by the target component and are not needed
for the restoration": a pull releases its message's buffer immediately
(the durable copy, when the call is logged, lives in the call log, not
the message buffer).

The batched fast path (``FLAGS.batched_crossings``) adds
``begin_crossing()`` / ``end_crossing()``: the synchronous dispatcher
knows its pull follows its push immediately, so one crossing reserves
and releases arena space without constructing a :class:`Message` or
touching the in-flight dict — while issuing the exact same
``msg_push`` / ``msg_pull`` charges, stats and obs metrics as the
reference pair.  The region's ``used_bytes`` mirror is net-zero across
a crossing and is skipped; every external observation point (between
syscalls, drop_for, crucible probes) sees identical state.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from ..fastpath import FLAGS, HANDLE_CACHE_LIMIT, HANDLES, is_immutable
from ..memory.region import Region
from ..sim.engine import Simulation

#: fixed per-message header charged on top of the payload
MESSAGE_HEADER_BYTES = 48

#: content-keyed wire-size cache (see fastpath.PayloadHandles)
_WIRE_SIZES = HANDLES.wire_sizes


class MessageDomainFull(Exception):
    """The message buffer arena is exhausted (undrained messages)."""


class Message:
    """One in-flight request or reply."""

    __slots__ = ("msg_id", "sender", "receiver", "func", "payload_bytes",
                 "is_reply", "span_id")

    def __init__(self, msg_id: int, sender: str, receiver: str, func: str,
                 payload_bytes: int, is_reply: bool = False,
                 span_id: Optional[int] = None) -> None:
        self.msg_id = msg_id
        self.sender = sender
        self.receiver = receiver
        self.func = func
        self.payload_bytes = payload_bytes
        self.is_reply = is_reply
        #: flight-recorder span active when the message was pushed — the
        #: causal parent the receiving side nests its dispatch span
        #: under (None when observability is off or no span is open)
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(msg_id={self.msg_id}, sender={self.sender!r}, "
                f"receiver={self.receiver!r}, func={self.func!r}, "
                f"payload_bytes={self.payload_bytes}, "
                f"is_reply={self.is_reply}, span_id={self.span_id})")


def _value_size(value: Any) -> int:
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (list, tuple)):
        return sum(len(v) if isinstance(v, (bytes, str)) else 8
                   for v in value)
    return 8


def payload_size(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> int:
    """Approximate wire size of a call's arguments (deterministic).

    Single pass over ``args`` then ``kwargs.values()`` (no concatenated
    list).  With ``FLAGS.interned_payloads`` the all-positional case is
    answered from a content-keyed cache: within the immutable family,
    equal argument tuples always price identically, so the key is the
    tuple itself.
    """
    if not kwargs and FLAGS.interned_payloads:
        try:
            size = _WIRE_SIZES.get(args)
        except TypeError:  # unhashable argument somewhere inside
            size = None
        else:
            if size is None:
                size = 0
                for value in args:
                    size += _value_size(value)
                if is_immutable(args):
                    if len(_WIRE_SIZES) >= HANDLE_CACHE_LIMIT:
                        _WIRE_SIZES.clear()
                    _WIRE_SIZES[args] = size
            return size
    total = 0
    for value in args:
        total += _value_size(value)
    for value in kwargs.values():
        total += _value_size(value)
    return total


class MessageDomain:
    """Buffer arena + accounting for one VampOS instance."""

    def __init__(self, sim: Simulation, region: Region) -> None:
        self.sim = sim
        self.region = region
        self._ids = itertools.count(1)
        #: msg_id -> Message for buffers not yet pulled
        self._in_flight: Dict[int, Message] = {}
        self.used_bytes = 0
        # lifetime stats
        self.pushes = 0
        self.pulls = 0
        self.peak_bytes = 0
        self.peak_in_flight = 0

    @property
    def capacity_bytes(self) -> int:
        return self.region.size_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def vo_push_msgs(self, sender: str, receiver: str, func: str,
                     args: Tuple[Any, ...] = (),
                     kwargs: Optional[Dict[str, Any]] = None,
                     is_reply: bool = False) -> Message:
        """Push a request (or a return value) into the message buffer.

        Charges the message-push cost and reserves buffer space; raises
        :class:`MessageDomainFull` if the arena cannot hold it (a real
        deployment would block the sender — in the synchronous
        simulation every message is pulled promptly, so hitting this
        means a leak).
        """
        probes = self.sim.probes
        if probes is not None:
            probes.fire("msg_push", sender=sender, receiver=receiver,
                        func=func, is_reply=is_reply)
        size = MESSAGE_HEADER_BYTES + payload_size(args, kwargs or {})
        if size > self.free_bytes:
            raise MessageDomainFull(
                f"message of {size}B does not fit "
                f"({self.used_bytes}/{self.capacity_bytes}B used)")
        self.sim.charge("msg_push", self.sim.costs.msg_push)
        message = Message(msg_id=next(self._ids), sender=sender,
                          receiver=receiver, func=func,
                          payload_bytes=size, is_reply=is_reply)
        obs = self.sim.obs
        if obs is not None:
            # The causal parent travels with the message: the receiver
            # opens its dispatch span under this id.
            message.span_id = obs.current_span_id()
            obs.inc("msgdom.pushes")
            obs.observe("msgdom.queue_depth", len(self._in_flight) + 1)
        self._in_flight[message.msg_id] = message
        self.used_bytes += size
        self.pushes += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.peak_in_flight = max(self.peak_in_flight,
                                  len(self._in_flight))
        self.region.used_bytes = self.used_bytes
        return message

    def vo_pull_msgs(self, message: Message) -> Message:
        """Pull a message out; its buffer is released immediately."""
        if message.msg_id not in self._in_flight:
            raise KeyError(f"message {message.msg_id} not in flight")
        probes = self.sim.probes
        if probes is not None:
            probes.fire("msg_pull", sender=message.sender,
                        receiver=message.receiver, func=message.func,
                        is_reply=message.is_reply)
        self.sim.charge("msg_pull", self.sim.costs.msg_pull)
        del self._in_flight[message.msg_id]
        self.used_bytes -= message.payload_bytes
        self.pulls += 1
        self.region.used_bytes = self.used_bytes
        obs = self.sim.obs
        if obs is not None:
            obs.inc("msgdom.pulls")
            obs.set_gauge("msgdom.used_bytes", self.used_bytes)
        return message

    # --- the batched crossing (FLAGS.batched_crossings) -------------------

    def begin_crossing(self, args: Tuple[Any, ...],
                       kwargs: Dict[str, Any]) -> Tuple[int, int]:
        """The push half of a synchronous crossing, sans Message object.

        Charge-for-charge identical to :meth:`vo_push_msgs`: same size
        computation, same :class:`MessageDomainFull` check, same
        ``msg_push`` charge, same stats/obs updates.  Returns
        ``(size, msg_id)`` for the paired :meth:`end_crossing`.  The
        dispatcher only takes this path when no crucible probes are
        attached (probes may reboot components mid-crossing and must
        see the reference in-flight bookkeeping).
        """
        size = MESSAGE_HEADER_BYTES + payload_size(args, kwargs)
        if size > self.region.size_bytes - self.used_bytes:
            raise MessageDomainFull(
                f"message of {size}B does not fit "
                f"({self.used_bytes}/{self.capacity_bytes}B used)")
        sim = self.sim
        sim.charge("msg_push", sim.costs.msg_push)
        msg_id = next(self._ids)
        used = self.used_bytes + size
        obs = sim.obs
        if obs is not None:
            obs.inc("msgdom.pushes")
            obs.observe("msgdom.queue_depth", len(self._in_flight) + 1)
        self.used_bytes = used
        self.pushes += 1
        if used > self.peak_bytes:
            self.peak_bytes = used
        depth = len(self._in_flight) + 1
        if depth > self.peak_in_flight:
            self.peak_in_flight = depth
        return size, msg_id

    def end_crossing(self, size: int) -> None:
        """The pull half of a batched crossing (see begin_crossing)."""
        sim = self.sim
        sim.charge("msg_pull", sim.costs.msg_pull)
        self.used_bytes -= size
        self.pulls += 1
        obs = sim.obs
        if obs is not None:
            obs.inc("msgdom.pulls")
            obs.set_gauge("msgdom.used_bytes", self.used_bytes)

    # --- the root-rejuvenation state boundary -----------------------------
    #
    # In-flight buffers are kernel-side state a root microreboot must
    # carry across the teardown.  Everything exported here is JSON-safe
    # (the fleet layer will ship it); live ``Message`` objects travel
    # separately so in-flight dispatch frames keep their identity.

    def export_run_state(self, exclude: Tuple[int, ...] = ()) \
            -> Dict[str, object]:
        """In-flight slots + counters as plain data.  ``exclude`` names
        message ids deliberately left behind (orphaned wear slots — the
        reboot is what reclaims their bytes).  Peeking at the id counter
        does not consume an id."""
        excluded = set(exclude)
        next_id = next(self._ids)
        self._ids = itertools.count(next_id)
        return {
            "next_id": next_id,
            "slots": [[m.msg_id, m.sender, m.receiver, m.func,
                       m.payload_bytes, m.is_reply]
                      for msg_id, m in sorted(self._in_flight.items())
                      if msg_id not in excluded],
            "stats": [self.pushes, self.pulls, self.peak_bytes,
                      self.peak_in_flight],
        }

    def restore_run_state(self, state: Dict[str, object],
                          live: Optional[Dict[int, Message]]
                          = None) -> None:
        """Load an :meth:`export_run_state` snapshot into this (freshly
        re-initialised) domain.  ``live`` optionally maps msg_id to the
        pre-teardown :class:`Message` objects so frames holding them
        stay valid (and span ids survive); missing ids are rebuilt
        cold.  ``used_bytes`` is recomputed from the kept slots — that
        recomputation is exactly how excluded orphans are reclaimed."""
        self._ids = itertools.count(int(state["next_id"]))
        self._in_flight.clear()
        used = 0
        for msg_id, sender, receiver, func, size, is_reply \
                in state["slots"]:
            message = (live or {}).get(msg_id)
            if message is None:
                message = Message(msg_id=int(msg_id), sender=str(sender),
                                  receiver=str(receiver), func=str(func),
                                  payload_bytes=int(size),
                                  is_reply=bool(is_reply))
            self._in_flight[message.msg_id] = message
            used += message.payload_bytes
        self.used_bytes = used
        (self.pushes, self.pulls, self.peak_bytes,
         self.peak_in_flight) = (int(v) for v in state["stats"])
        self.region.used_bytes = used

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def drop_for(self, component: str) -> int:
        """Release any buffers addressed to a component being torn down
        (part of the reboot path's cleanup).

        Keeps the obs dashboard in sync: the ``msgdom.used_bytes``
        gauge tracks the release (push/pull already maintain it, so a
        reboot-time drop must too or dashboards show ghost bytes) and
        drops are counted separately.  Peak statistics are lifetime
        high-water marks and are deliberately not rewound.
        """
        doomed = [m for m in self._in_flight.values()
                  if m.receiver == component]
        for message in doomed:
            del self._in_flight[message.msg_id]
            self.used_bytes -= message.payload_bytes
        self.region.used_bytes = self.used_bytes
        obs = self.sim.obs
        if obs is not None and doomed:
            obs.inc("msgdom.drops", len(doomed))
            obs.set_gauge("msgdom.used_bytes", self.used_bytes)
        return len(doomed)
