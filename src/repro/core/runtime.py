"""The VampOS runtime (§IV, §V).

``VampOSKernel`` runs the same unikernel image as the vanilla kernel but
with the paper's machinery in place:

* cross-component calls travel through **message domains** and are
  scheduled onto per-component **threads** (§V-A);
* calls into stateful components are **logged**, together with the
  return values of their outbound calls (§V-B), and the logs are kept
  small by **session-aware shrinking** (§V-F);
* every component (or merge group) lives in its own **protection
  domain** (§V-D);
* post-boot **checkpoints** are taken of every stateful component
  (§V-E);
* on a fail-stop fault the **failure detector** triggers a
  component-level reboot: teardown → checkpoint restore → encapsulated
  log replay → runtime-data re-import → thread reattach — after which
  the in-flight call is retried (re-execution avoids non-deterministic
  faults, §II-B).  What happens when the retry fails *again* is owned
  by the :class:`~repro.supervisor.RecoverySupervisor`: an escalation
  ladder (fresh restart, variant swap, dependency-scoped widening,
  rejuvenate-all), retry budgets with backoff, crash-storm detection
  and graceful degradation, ending in a fail-stop only when every
  armed remedy is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..memory.mpk import (
    INTEL_MPK_KEYS,
    PKRU,
    ProtectionDomains,
    ProtectionFault,
    VirtualizedProtectionDomains,
)
from ..memory.region import Region, RegionKind
from ..memory.snapshot import SnapshotStore
from ..sim.engine import Simulation
from ..unikernel.component import Component, ComponentState
from ..rejuvenation import (
    RootRebootRecord,
    RootWear,
    capture_root_checkpoint,
    restore_root_checkpoint,
)
from ..unikernel.errors import (
    ComponentFailure,
    HangDetected,
    KernelPanic,
    Panic,
    RecoveryFailed,
    SyscallError,
    UnrebootableComponent,
)
from ..unikernel.image import APP, UnikernelImage
from ..unikernel.kernel import Kernel
from ..obs.postmortem import emit_postmortem
from ..obs.slo import SloLedger, ledger_now_us
from .calllog import ComponentCallLog
from .config import (
    SCHEDULER_DEPENDENCY_AWARE,
    SCHEDULER_ROUND_ROBIN,
    DAS,
    VampConfig,
)
from .detector import FailureDetector
from ..fastpath import FLAGS, HANDLES
from .messages import MESSAGE_HEADER_BYTES, MessageDomain, payload_size

#: interned wire sizes, shared with messages.payload_size (empty — and
#: therefore a guaranteed miss — while interned_payloads is off)
_WIRE_SIZES = HANDLES.wire_sizes
from .restore import EncapsulatedRestorer, ReplayMismatch, ReplaySession
from .scheduler import (
    APP_THREAD,
    MSG_THREAD,
    BaseScheduler,
    DependencyAwareScheduler,
    RoundRobinScheduler,
    ThreadState,
    build_units,
)

_RUNNING = ThreadState.RUNNING
_IDLE = ThreadState.IDLE
from .shrink import LogShrinker


@dataclass
class RebootRecord:
    """One component-level reboot, for the Fig. 6 experiments."""

    component: str
    unit: str
    members: Tuple[str, ...]
    reason: str
    start_us: float
    downtime_us: float = 0.0
    snapshot_bytes: int = 0
    entries_replayed: int = 0
    retvals_fed: int = 0
    stateless: bool = False


class _CrossingPlan:
    """One non-merged crossing, compiled to a charge tape.

    Under dependency-aware scheduling the exact charge sequence of a
    crossing (request push → [MSG thread] → target switch → pull, and
    the mirror-image reply) depends only on the static pieces: the
    caller/target units, the candidate table, whether the call is
    logged and whether the caller keeps a return-value log.  The
    dispatcher compiles that sequence once per (caller, target, logged)
    and replays it as straight-line dict arithmetic — every individual
    ``(category, amount)`` charge is still applied separately and in
    reference order, so the virtual clock and the per-category ledger
    stay bit-identical to the uncompiled path.

    ``req_run`` / ``rep_run`` are the tapes code-generated into one
    straight-line function each (amounts and unit names baked in as
    constants, the clock accumulated in a local and stored once — the
    same left-to-right float additions, so the result is bit-identical).
    The ``*_tape`` / delta slots keep the symbolic form the neutrality
    tests inspect.
    """

    __slots__ = ("caller_unit", "target_unit", "thread",
                 "req_tape", "req_switches", "req_deps", "req_wasted",
                 "req_fallbacks", "req_run",
                 "rep_tape", "rep_switches", "rep_deps", "rep_wasted",
                 "rep_fallbacks", "rep_run")


def _compile_crossing(tape, deltas, msg_dispatch, caller_unit,
                      target_unit, reply):
    """Code-generate one crossing side into a straight-line function.

    The generated body replays the tape's charges one at a time in
    reference order (each amount a baked-in constant; ``repr`` of a
    float round-trips exactly), accumulating the clock in a local and
    storing it once — the identical sequence of left-to-right float
    additions, so clock and ledger stay bit-identical to the loop it
    replaces.  The domain/scheduler bookkeeping that the fast lane
    performed inline follows, with the per-plan stat deltas folded into
    constants.
    """
    switches, deps, wasted, fallbacks = deltas
    src = ["def run(sim, md, sched, thread, size):",
           "    clock = sim.clock",
           "    ledger = sim.ledger",
           "    totals = ledger.totals",
           "    counts = ledger.counts",
           "    n = clock._now_us",
           "    e = ledger.elapsed_us"]
    for cat, amt in tape:
        c, a = repr(cat), repr(amt)
        # e accumulates per entry (not one folded constant) so the
        # float addition order matches CostLedger.charge exactly.
        src += [f"    n += {a}",
                f"    e += {a}",
                f"    try:",
                f"        totals[{c}] += {a}",
                f"    except KeyError:",
                f"        totals[{c}] = 0.0 + {a}",
                f"        counts[{c}] = 1",
                f"    else:",
                f"        counts[{c}] += 1"]
    src += ["    clock._now_us = n",
            "    ledger.elapsed_us = e",
            "    mid = next(md._ids)",
            "    md.pushes += 1",
            "    md.pulls += 1",
            "    used = md.used_bytes + size",
            "    if used > md.peak_bytes:",
            "        md.peak_bytes = used",
            "    depth = len(md._in_flight) + 1",
            "    if depth > md.peak_in_flight:",
            "        md.peak_in_flight = depth",
            "    stats = sched.stats",
            f"    stats.dispatches += {switches}",
            f"    stats.dependency_lookups += {deps}"]
    if wasted:
        src.append(f"    stats.wasted_polls += {wasted}")
    if fallbacks:
        src.append(f"    sched.fallback_dispatches += {fallbacks}")
    if msg_dispatch:
        src.append("    stats.msg_thread_dispatches += 1")
    if reply:
        src += ["    chain = sched._active_chain",
                f"    if chain and chain[-1] == {target_unit!r}:",
                "        chain.pop()",
                f"    if {target_unit!r} not in chain:",
                "        thread.state = _IDLE",
                f"    sched.current = {caller_unit!r}"]
    else:
        src += [f"    sched._active_chain.append({target_unit!r})",
                "    thread.state = _RUNNING",
                "    thread.dispatches += 1",
                f"    sched.current = {target_unit!r}"]
    # The message id feeds the dispatch span's ``msg_id`` when a flight
    # recorder is attached; plain callers ignore the return value.
    src.append("    return mid")
    namespace = {"_RUNNING": _RUNNING, "_IDLE": _IDLE}
    exec("\n".join(src), namespace)  # noqa: S102 - static template
    return namespace["run"]


def _replay_obs_crossing(obs, md, tape):
    """Replay the observability side of one compiled crossing.

    Mirrors exactly what ``begin_crossing``/``end_crossing`` and the
    per-charge :meth:`Simulation.charge` hook would have reported (see
    :meth:`FlightRecorder.on_crossing`).  The metrics registry and the
    virtual-time profile are disjoint accumulators, so grouping the
    attributions after the tape ran leaves the collector state
    identical to the interleaved reference sequence.
    """
    obs.on_crossing(tape, len(md._in_flight) + 1, md.used_bytes)


class VampDispatcher:
    """Message-passing dispatch with logging, scheduling and recovery.

    The dispatch fast lane: ``invoke`` runs per crossing, so the
    ``kernel.*`` subsystem handles it needs are bound once (lazily, on
    the first call — the kernel finishes wiring its subsystems after
    constructing the dispatcher) instead of chased through attribute
    chains per call.  The kernel rebuilds the whole dispatcher whenever
    it re-initialises (``full_reboot`` re-runs ``__init__``), so the
    bound handles can never go stale.
    """

    __slots__ = ("kernel", "sim", "replay_session", "_bound",
                 "_components", "_message_domain", "_scheduler", "_logs",
                 "_shrinkers", "_supervisor", "_detector", "_meter",
                 "_logging_enabled", "_member_map", "_plans")

    def __init__(self, kernel: "VampOSKernel") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        #: active replay session during an encapsulated restoration
        self.replay_session: Optional[ReplaySession] = None
        self._bound = False

    def _bind(self) -> None:
        kernel = self.kernel
        self._components = kernel.image.components
        self._message_domain = kernel.message_domain
        self._scheduler = kernel.scheduler
        self._logs = kernel.logs
        self._shrinkers = kernel.shrinkers
        self._supervisor = kernel.supervisor
        self._detector = kernel.detector
        self._meter = kernel.meter
        self._logging_enabled = kernel.config.logging_enabled
        self._member_map = kernel.scheduler.member_map
        #: (caller, target, logged) -> _CrossingPlan, or False when the
        #: crossing cannot be compiled (round-robin, merged units)
        self._plans: Dict[Tuple[str, str, bool], Any] = {}
        self._bound = True

    def _build_plan(self, caller: str, target: str,
                    logged: bool) -> Any:
        """Compile the crossing's charge tape (see :class:`_CrossingPlan`).

        Caches and returns False when the crossing cannot be compiled:
        anything but a plain :class:`DependencyAwareScheduler` (a
        subclass may override the switch protocol), merged units, or a
        pathological cost model with negative amounts (those take
        ``Simulation.charge``'s ignore branch, which a tape replay
        cannot reproduce).
        """
        sched = self._scheduler
        key = (caller, target, logged)
        costs = self.sim.costs
        caller_unit = sched.unit_of(caller)
        target_unit = sched.unit_of(target)
        thread = sched.threads.get(target_unit)
        if (type(sched) is not DependencyAwareScheduler
                or caller_unit == target_unit or thread is None):
            self._plans[key] = False
            return False
        candidates = sched._candidates

        def extend_switch(tape: list, deltas: list,
                          frm: str, to: str) -> str:
            # Mirrors DependencyAwareScheduler._switch_to(poll=True);
            # deltas = [switches, lookups, wasted, fallbacks].
            tape.append(("dependency_lookup", costs.dependency_lookup))
            deltas[1] += 1
            cands = candidates.get(frm)
            if cands is None or to not in cands:
                scan = len(cands) if cands else 0
                if scan:
                    tape.append(("wasted_poll", scan * costs.wasted_poll))
                    deltas[2] += scan
                deltas[3] += 1
            tape.append(("thread_switch", costs.thread_switch))
            tape.append(("pkru_write", costs.pkru_write))
            deltas[0] += 1
            return to

        req_tape: list = [("msg_push", costs.msg_push)]
        req_deltas = [0, 0, 0, 0]
        cur = caller_unit
        if logged:
            cur = extend_switch(req_tape, req_deltas, cur, MSG_THREAD)
        extend_switch(req_tape, req_deltas, cur, target_unit)
        req_tape.append(("msg_pull", costs.msg_pull))

        needs_msg = self._logs.get(caller) is not None
        rep_tape: list = [("msg_push", costs.msg_push)]
        rep_deltas = [0, 0, 0, 0]
        cur = target_unit
        if needs_msg:
            cur = extend_switch(rep_tape, rep_deltas, cur, MSG_THREAD)
        extend_switch(rep_tape, rep_deltas, cur, caller_unit)
        rep_tape.append(("msg_pull", costs.msg_pull))

        if any(amt < 0 for _, amt in req_tape) \
                or any(amt < 0 for _, amt in rep_tape):
            self._plans[key] = False
            return False
        plan = _CrossingPlan()
        plan.caller_unit = caller_unit
        plan.target_unit = target_unit
        plan.thread = thread
        plan.req_tape = tuple(req_tape)
        (plan.req_switches, plan.req_deps,
         plan.req_wasted, plan.req_fallbacks) = req_deltas
        plan.rep_tape = tuple(rep_tape)
        (plan.rep_switches, plan.rep_deps,
         plan.rep_wasted, plan.rep_fallbacks) = rep_deltas
        plan.req_run = _compile_crossing(req_tape, req_deltas, logged,
                                         caller_unit, target_unit,
                                         reply=False)
        plan.rep_run = _compile_crossing(rep_tape, rep_deltas, needs_msg,
                                         caller_unit, target_unit,
                                         reply=True)
        self._plans[key] = plan
        return plan

    # --- the main entry point ----------------------------------------------------

    def invoke(self, caller: str, target: str, func: str,
               args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        kernel = self.kernel
        sim = self.sim
        if not self._bound:
            self._bind()

        # Encapsulated restoration: the restoring component's outbound
        # calls are answered from the return-value log (Fig. 3).
        session = self.replay_session
        if session is not None and caller == session.component:
            return session.next_retval(target, func)

        # Degraded components answer every call with an ENODEV-style
        # error instead of dispatching (graceful degradation).  The
        # error is recorded in the caller's return-value log like any
        # other errno, so a later replay of the caller re-raises it.
        supervisor = self._supervisor
        if supervisor.degraded and supervisor.is_degraded(target):
            if sim.obs is not None:
                sim.obs.inc("dispatch.degraded")
            error_exc = supervisor.answer_degraded_call(target, func)
            self._record_caller_retval(caller, target, func, None,
                                       (error_exc.errno, str(error_exc)))
            raise error_exc

        comp = self._components.get(target)
        if comp is None:
            comp = kernel.component(target)  # raises the decorated error
        # Pre-resolved dispatch: one cached dict hit instead of an
        # interface rebuild (raises AttributeError like the old lookup).
        hit = comp._export_cache.get(func)
        if hit is None:
            hit = comp.resolve_export(func)
        method, info = hit

        rec = self._meter._active  # inlined meter.note_transition(2)
        if rec is not None:
            rec.transitions += 2
        sched = self._scheduler
        mm = self._member_map  # inlined scheduler.same_unit
        merged = mm.get(caller, caller) == mm.get(target, target)
        log = self._logs.get(target)
        logged = (log is not None and info.logged
                  and self._logging_enabled)

        # --- request path: message passing + scheduling -------------------
        obs = sim.obs
        dspan = None
        dispatch_t0 = 0.0
        md = self._message_domain
        # The batched crossing bails out whenever crucible probes are
        # attached: probes fire at the push/pull sites and may reboot
        # components mid-crossing, which needs the reference in-flight
        # bookkeeping.
        batched = FLAGS.batched_crossings and sim.probes is None
        plan = None
        fastlane = False
        if obs is not None:
            dispatch_t0 = sim.clock.now_us
            obs.inc("dispatch.calls")
        if merged:
            sim.charge("function_call", sim.costs.function_call)
            if obs is not None:
                dspan = obs.open_span("dispatch", f"{target}.{func}",
                                      caller=caller, merged=True)
        elif batched:
            plan = self._plans.get((caller, target, logged))
            if plan is None:
                plan = self._build_plan(caller, target, logged)
            if (plan is not False
                    and sched.current == plan.caller_unit
                    and plan.target_unit not in sched._active_chain
                    and not sim.clock._watchers):
                fastlane = True
            if fastlane:
                # --- the compiled request tape (see _CrossingPlan) ----
                psize = None
                if not kwargs:
                    try:
                        psize = _WIRE_SIZES.get(args)
                    except TypeError:  # unhashable payload
                        psize = None
                if psize is None:
                    psize = payload_size(args, kwargs)
                size = MESSAGE_HEADER_BYTES + psize
                if size > md.region.size_bytes - md.used_bytes:
                    md.begin_crossing(args, kwargs)  # raises (domain full)
                mid = plan.req_run(sim, md, sched, plan.thread, size)
                if obs is not None:
                    # The recorder sees the same crossing the reference
                    # path reports: attributions, counters, then the
                    # dispatch span under the span open at entry.
                    _replay_obs_crossing(obs, md, plan.req_tape)
                    dspan = obs.open_span("dispatch", f"{target}.{func}",
                                          parent=obs.current_span_id(),
                                          caller=caller, msg_id=mid)
            else:
                # Same charges in the same order as the reference triple
                # (push → dispatch → pull), minus the Message object and
                # the in-flight dict churn.
                parent = obs.current_span_id() if obs is not None else None
                req_size, req_id = md.begin_crossing(args, kwargs)
                sched.dispatch(target, needs_msg_thread=logged)
                md.end_crossing(req_size)
                if obs is not None:
                    dspan = obs.open_span("dispatch", f"{target}.{func}",
                                          parent=parent, caller=caller,
                                          msg_id=req_id)
        else:
            message = md.vo_push_msgs(
                caller, target, func, args, kwargs)
            sched.dispatch(target, needs_msg_thread=logged)
            md.vo_pull_msgs(message)
            if obs is not None:
                # Parent id travels on the message (stamped at push
                # time): the dispatch span nests under the span that
                # was open when the request entered the domain.
                dspan = obs.open_span("dispatch", f"{target}.{func}",
                                      parent=message.span_id,
                                      caller=caller,
                                      msg_id=message.msg_id)

        entry = None
        if logged:
            key = None
            if info.key_arg is not None and len(args) > info.key_arg:
                key = args[info.key_arg]
            entry = log.append(func, args, kwargs, key=key,
                               session_opener=info.session_opener,
                               canceling=info.canceling,
                               durable=info.durable)
            # Inlined sim.charge("log_append", ...) on the untraced hot
            # path (no obs hook, no watcher notify needed).
            amt = sim.costs.log_append
            if obs is None and amt > 0.0 and not sim.clock._watchers:
                sim.clock._now_us += amt
                ledger = sim.ledger
                ledger.elapsed_us += amt
                try:
                    ledger.totals["log_append"] += amt
                except KeyError:
                    ledger.totals["log_append"] = 0.0 + amt
                    ledger.counts["log_append"] = 1
                else:
                    ledger.counts["log_append"] += 1
            else:
                sim.charge("log_append", amt)
            rec = self._meter._active  # inlined note_log_entries(1)
            if rec is not None:
                rec.log_entries += 1
            log._active.append(entry)  # inlined log.push_active
            if obs is not None:
                obs.inc("calllog.appends")
                obs.set_gauge(f"calllog.bytes.{target}",
                              log.space_bytes())

        # --- execution with failure handling -------------------------------
        result: Any = None
        error: Optional[Tuple[str, str]] = None
        try:
            try:
                # Inlined call_interface (same order: hang check, fault
                # check, body charge, bound-method call) — the guards
                # skip the calls entirely when no fault is injected,
                # which is every call outside the fault experiments.
                if comp.injected_hang:
                    self._detector.check_hang(comp)
                if comp.injected_panic is not None \
                        or comp.deterministic_faults:
                    comp.check_injected_faults(func)
                amt = sim.costs.function_body + info.body_cost
                if obs is None and amt > 0.0 and not sim.clock._watchers:
                    # inlined sim.charge("function_body", amt)
                    sim.clock._now_us += amt
                    ledger = sim.ledger
                    ledger.elapsed_us += amt
                    try:
                        ledger.totals["function_body"] += amt
                    except KeyError:
                        ledger.totals["function_body"] = 0.0 + amt
                        ledger.counts["function_body"] = 1
                    else:
                        ledger.counts["function_body"] += 1
                else:
                    sim.charge("function_body", amt)
                result = method(*args, **kwargs)
            except SyscallError as exc:
                error = (exc.errno, str(exc))
                raise
            except (Panic, HangDetected) as failure:
                # The message thread detected the fault; hand it to
                # the recovery supervisor, which walks the escalation
                # ladder (reboot-and-retry first, §II-B) and returns
                # the retried call's result — or raises the degraded
                # errno / RecoveryFailed when recovery is impossible.
                if entry is not None:
                    log.clear_nested(entry)
                try:
                    result = supervisor.handle_failure(
                        comp, func, args, kwargs, failure)
                except SyscallError as exc:
                    error = (exc.errno, str(exc))
                    raise
        finally:
            if entry is not None:
                log.pop_active(entry)
                if error is None:
                    # Direct calls bypass CallLogEntry.__setattr__'s
                    # name-based routing (identical effect: ``result``
                    # routes to _reresult, ``completed`` is unrouted).
                    log._reresult(entry, result)
                    object.__setattr__(entry, "completed", True)
                    if info.key_from_result and _is_scalar_key(result):
                        entry.key = result
                    if info.key_from_result and result is None:
                        # The call opened no session (accept() with an
                        # empty backlog): nothing to restore, drop it.
                        log.remove_entries([entry])
                    else:
                        self._shrinkers[target].on_entry_complete(entry)
                else:
                    # A failed call does not change component state;
                    # keep the log free of it.
                    log.remove_entries([entry])
            # Inlined _record_caller_retval: the commonest caller (the
            # application) keeps no return-value log.
            caller_log = self._logs.get(caller)
            if caller_log is not None and caller_log.record_retval(
                    target, func, result=result, error=error):
                amt = sim.costs.retval_append
                if obs is None and amt > 0.0 \
                        and not sim.clock._watchers:
                    # inlined sim.charge("retval_append", amt)
                    sim.clock._now_us += amt
                    ledger = sim.ledger
                    ledger.elapsed_us += amt
                    try:
                        ledger.totals["retval_append"] += amt
                    except KeyError:
                        ledger.totals["retval_append"] = 0.0 + amt
                        ledger.counts["retval_append"] = 1
                    else:
                        ledger.counts["retval_append"] += 1
                else:
                    sim.charge("retval_append", amt)
                rec = self._meter._active  # inlined note_log_entries
                if rec is not None:
                    rec.log_entries += 1
            # --- reply path ------------------------------------------------
            if not merged:
                needs_msg = self._logs.get(caller) is not None
                if (fastlane and sched.current == plan.target_unit
                        and not sim.clock._watchers):
                    # --- the compiled reply tape ----------------------
                    reply_args = (result,)
                    try:
                        psize = _WIRE_SIZES.get(reply_args)
                    except TypeError:  # unhashable payload
                        psize = None
                    if psize is None:
                        psize = payload_size(reply_args, {})
                    size = MESSAGE_HEADER_BYTES + psize
                    if size > md.region.size_bytes - md.used_bytes:
                        md.begin_crossing(reply_args, {})  # raises
                    plan.rep_run(sim, md, sched, plan.thread, size)
                    if obs is not None:
                        _replay_obs_crossing(obs, md, plan.rep_tape)
                elif batched and sim.probes is None:
                    rep_size, _ = md.begin_crossing((result,), {})
                    sched.complete(target, caller,
                                   needs_msg_thread=needs_msg)
                    md.end_crossing(rep_size)
                else:
                    reply = md.vo_push_msgs(
                        target, caller, func, (result,), is_reply=True)
                    sched.complete(target, caller,
                                   needs_msg_thread=needs_msg)
                    md.vo_pull_msgs(reply)
            if obs is not None:
                if error is None:
                    obs.close_span(dspan)
                else:
                    obs.inc("dispatch.errors")
                    obs.close_span(dspan, errno=error[0])
                obs.observe("dispatch.latency_us",
                            sim.clock.now_us - dispatch_t0)
        return result

    def _record_caller_retval(self, caller: str, target: str, func: str,
                              result: Any,
                              error: Optional[Tuple[str, str]]) -> None:
        """Store the outcome in the caller's return-value log (§V-B)."""
        if not self._bound:
            self._bind()
        caller_log = self._logs.get(caller)
        if caller_log is None:
            return
        if caller_log.record_retval(target, func, result=result,
                                    error=error):
            self.sim.charge("retval_append", self.sim.costs.retval_append)
            rec = self._meter._active  # inlined note_log_entries(1)
            if rec is not None:
                rec.log_entries += 1

class VampOSKernel(Kernel):
    """A unikernel image run under VampOS."""

    MODE = "vampos"

    def __init__(self, image: UnikernelImage,
                 config: VampConfig = DAS,
                 num_protection_keys: int = INTEL_MPK_KEYS) -> None:
        super().__init__(image)
        config.validate()
        for group, members in config.merges.items():
            for member in members:
                if member not in image:
                    raise ValueError(
                        f"merge group {group!r} member {member!r} is not "
                        f"linked into the {image.app_name!r} image")
        self.config = config
        self._vamp = VampDispatcher(self)
        self.detector = FailureDetector(
            self.sim, hang_threshold_us=config.hang_threshold_us)
        self.snapshots = SnapshotStore(self.sim)
        self.restorer = EncapsulatedRestorer(self.sim)
        self.reboots: List[RebootRecord] = []

        # --- threads -------------------------------------------------------
        units, member_map = build_units(image.boot_order, config.merges)
        if config.scheduler == SCHEDULER_ROUND_ROBIN:
            self.scheduler: BaseScheduler = RoundRobinScheduler(
                self.sim, units, member_map)
        else:
            self.scheduler = DependencyAwareScheduler(
                self.sim, units, image.dependency_graph(), member_map)

        # --- protection domains (§V-D) ---------------------------------------
        if config.virtualize_keys:
            self.domains: ProtectionDomains = VirtualizedProtectionDomains(
                num_protection_keys, enforce=config.enforce_mpk,
                sim=self.sim)
        else:
            self.domains = ProtectionDomains(num_protection_keys,
                                             enforce=config.enforce_mpk)
        self.pkrus: Dict[str, PKRU] = {}
        self._tag_domains(units, member_map, num_protection_keys)

        # --- message domain: logs + buffers (Fig. 4) ---------------------------
        self.msg_domain = Region("MSGDOM.region", RegionKind.MESSAGE,
                                 config.msg_domain_bytes, owner="MSGDOM",
                                 backed=False)
        self.domains.tag_region(self.msg_domain, self._msgdom_key)
        self.message_domain = MessageDomain(self.sim, self.msg_domain)
        self.logs: Dict[str, ComponentCallLog] = {}
        self.shrinkers: Dict[str, LogShrinker] = {}
        for name in image.stateful_components():
            comp = image.component(name)
            log = ComponentCallLog(name)
            self.logs[name] = log
            self.shrinkers[name] = LogShrinker(
                self.sim, comp, log,
                threshold=config.shrink_threshold,
                enabled=config.shrink_enabled)

        #: continuously saved runtime data (§V-B), per component
        self._runtime_data: Dict[str, Any] = {}
        #: §VIII extensions: multi-version components, graceful
        #: termination hooks, live-update history
        self.variants: Dict[str, type] = {}
        self._fail_stop_hooks: List[Any] = []
        self.updates: List[RebootRecord] = []

        # --- root rejuvenation (kernel-side wear + microreboot) ------------
        #: accumulated kernel-side damage only rejuvenate_root heals
        self.root_wear = RootWear()
        #: pending root-services panic reason (injected); surfaced at
        #: the next syscall or heartbeat — absorbed by a root reboot
        #: when armed, terminal otherwise
        self.root_panicked: Optional[str] = None
        self.root_reboots: List[RootRebootRecord] = []

        # --- recovery supervision (escalation, budgets, degradation) ------
        # Imported here (not at module level) because the supervisor
        # package reads core.detector; importing it lazily keeps
        # ``import repro.core.runtime`` acyclic from any entry point.
        from ..supervisor import RecoverySupervisor
        self.supervisor = RecoverySupervisor(self)

        # --- reliability observatory (SLO ledger + postmortems) ------------
        # Armed by config or whenever the flight recorder is attached;
        # purely observational either way, so arming it changes no
        # report byte.  Registered with the collector so recordings
        # carry the ledger (full_reboot re-runs __init__: the superseded
        # ledger stays registered and is serialised alongside).
        obs = self.sim.obs
        self.slo = SloLedger(
            enabled=config.slo_enabled or obs is not None,
            label=f"{image.app_name}/{config.name}")
        if obs is not None:
            obs.collector.slo_ledgers.append(self.slo)
        #: the most recent postmortem document (terminal failures)
        self.last_postmortem: Optional[Dict[str, Any]] = None
        self.postmortem_seq = 0

    # --- protection-domain assignment ---------------------------------------------

    def _tag_domains(self, units: List[str], member_map: Dict[str, str],
                     num_keys: int) -> None:
        app_key = self.domains.allocate(APP)
        unit_keys: Dict[str, int] = {}
        for unit in units:
            if unit in (APP_THREAD, MSG_THREAD):
                continue
            unit_keys[unit] = self.domains.allocate(unit)
        self._msgdom_key = self.domains.allocate("MSGDOM")
        self._sched_key = self.domains.allocate("SCHED")
        self._unit_keys = unit_keys
        self._app_key = app_key
        for name in self.image.boot_order:
            comp = self.image.component(name)
            key = unit_keys[self.scheduler.unit_of(name)]
            for region in comp.regions:
                self.domains.tag_region(region, key)
        # One PKRU per thread: its own domain plus the message domain.
        for unit, key in unit_keys.items():
            pkru = PKRU(num_keys)
            self.domains.grant(pkru, key, write=True)
            self.domains.grant(pkru, self._msgdom_key, write=True)
            self.pkrus[unit] = pkru
        app_pkru = PKRU(num_keys)
        self.domains.grant(app_pkru, app_key, write=True)
        self.domains.grant(app_pkru, self._msgdom_key, write=True)
        self.pkrus[APP_THREAD] = app_pkru

    def mpk_tag_count(self) -> int:
        """Tags in use: app + units + message domain + scheduler."""
        return self.domains.keys_in_use() - 1  # key 0 is the default key

    # --- Kernel plumbing ----------------------------------------------------------------

    def _dispatcher(self) -> VampDispatcher:
        return self._vamp

    def _post_boot(self) -> None:
        """Take the post-boot checkpoints (§V-E) and seed runtime data."""
        if self.config.checkpoints_enabled:
            for name in self.image.stateful_components():
                comp = self.image.component(name)
                if not comp.REBOOTABLE:
                    continue
                self.snapshots.take(name, comp.regions,
                                    comp.export_state())
        for name in self.image.boot_order:
            comp = self.image.component(name)
            data = comp.export_runtime_data()
            if data is not None:
                self._runtime_data[name] = data
        self.slo.seed_up(list(self.image.boot_order),
                         ledger_now_us(self.sim.ledger))

    def syscall(self, target: str, func: str, *args: Any,
                **kwargs: Any) -> Any:
        if self.root_panicked is not None:
            # Root services are corrupted: absorb it with a root
            # microreboot when armed, die like vanilla otherwise.
            self._root_recover(self.root_panicked)
        slo = self.slo
        if not slo.enabled:
            result = super().syscall(target, func, *args, **kwargs)
            self._save_runtime_data()
            return result
        # A served SyscallError (degraded mode, ENOENT, ...) is an
        # answered-with-error request; terminal exceptions (fail-stop,
        # kernel panic) propagate uncounted — the availability
        # intervals already record the death.
        try:
            result = super().syscall(target, func, *args, **kwargs)
        except SyscallError:
            slo.note_request(target, func, ok=False)
            raise
        slo.note_request(target, func, ok=True)
        self._save_runtime_data()
        return result

    def _save_runtime_data(self) -> None:
        """§V-B: save the special runtime data every time it may have
        been updated (after each top-level syscall).

        Components that track a ``runtime_data_dirty`` flag are only
        re-exported when a mutator actually ran since the last save;
        everything else is re-exported unconditionally, as before.
        """
        # Iterated directly: the loop only updates existing keys, so the
        # dict never changes size mid-iteration.
        for name in self._runtime_data:
            comp = self.image.component(name)
            if comp.state is not ComponentState.BOOTED:
                continue
            if (FLAGS.dirty_runtime_data
                    and comp.TRACKS_RUNTIME_DATA_DIRTY
                    and not comp.runtime_data_dirty):
                continue
            self._runtime_data[name] = comp.export_runtime_data()
            comp.runtime_data_dirty = False

    # --- component-level reboot (§IV) ------------------------------------------------------

    def reboot_component(self, name: str, reason: str = "manual",
                         replay: bool = True) -> RebootRecord:
        """Reboot the component (or its whole merge group) and restore it.

        ``replay=False`` is the supervisor's fresh-restart remedy: the
        members come back from their post-boot checkpoints *without*
        the encapsulated log replay, and the (now unreplayed, hence
        inconsistent) logs are cleared.  Lossy, but it sidesteps a
        fault that re-triggers during replay.

        Returns the :class:`RebootRecord` with the measured downtime.
        """
        comp = self.component(name)
        if not comp.REBOOTABLE:
            raise UnrebootableComponent(
                name, "its state is shared with the host (§VIII)")
        unit = self.scheduler.unit_of(name)
        members = tuple(n for n in self.image.boot_order
                        if self.scheduler.unit_of(n) == unit)
        record = RebootRecord(
            component=name, unit=unit, members=members, reason=reason,
            start_us=self.sim.clock.now_us,
            stateless=all(not self.image.component(m).STATEFUL
                          for m in members))
        if self.sim.trace.wants("reboot"):
            self.sim.emit("reboot", "component_start", component=name,
                          unit=unit, members=list(members), reason=reason)
        obs = self.sim.obs
        rspan = None
        if obs is not None:
            obs.inc("reboot.count")
            rspan = obs.open_span("reboot", name, unit=unit,
                                  reason=reason)
        self.scheduler.mark_rebooting(name)
        sup = self.supervisor
        # A direct reboot (heartbeat sweep, probe, rejuvenation) is its
        # own "sweep" episode; inside a ladder walk / storm plan / root
        # reboot the marks attribute to the enclosing episode's clock.
        clock = sup.phase_push("sweep") if not sup._phase_clocks else None
        if self.slo.enabled:
            for member in members:
                self.slo.note_state(member, "rebooting",
                                    ledger_now_us(self.sim.ledger))
        self.sim.charge("reboot_teardown", self.sim.costs.reboot_teardown)
        try:
            try:
                for member in members:
                    self.message_domain.drop_for(member)
                    self._restart_member(member, record, replay=replay)
            finally:
                if obs is not None:
                    obs.close_span(rspan,
                                   downtime_us=self.sim.clock.now_us
                                   - record.start_us)
            self.scheduler.reattach(name)
            sup.phase_mark("resume")
            if self.slo.enabled:
                for member in members:
                    self.slo.note_state(member, "up",
                                        ledger_now_us(self.sim.ledger))
        finally:
            if clock is not None:
                sup.phase_pop(clock)
        record.downtime_us = self.sim.clock.now_us - record.start_us
        self.reboots.append(record)
        if obs is not None:
            obs.observe("reboot.downtime_us", record.downtime_us)
        if self.sim.trace.wants("reboot"):
            self.sim.emit("reboot", "component_done", component=name,
                          downtime_us=record.downtime_us,
                          replayed=record.entries_replayed)
        return record

    def _restart_member(self, member: str, record: RebootRecord,
                        replay: bool = True) -> None:
        comp = self.image.component(member)
        comp.state = ComponentState.REBOOTING
        # A sticky (multi-hit) panic is environmental: the fresh image
        # does not remove its source, so the remaining hits are re-armed
        # once the restart (including the replay) has finished.
        sticky_panic = (comp.injected_panic
                        if comp.injected_panic_sticky else None)
        sticky_count = comp.injected_panic_count
        comp.injected_panic = None
        comp.injected_hang = False
        # The fresh memory image has no corruption, whatever the fault
        # did to the old one (bit flips included).
        for region in comp.regions:
            region.corrupted = False
        try:
            if not comp.STATEFUL:
                # Plain reinitialisation: no log, no snapshot (§VI).
                self.sim.charge("stateless_reinit",
                                self.sim.costs.stateless_reinit)
                comp.allocator.reset()
                comp.boot()
                self.supervisor.phase_mark("reboot")
                return
            self.supervisor.phase_mark("reboot")
            snap = self.snapshots.get(member)
            if snap is None:
                # No checkpoint (ablation config): full
                # re-initialisation, which may disturb other components
                # — exactly what §V-E warns about; the ablation
                # benchmark measures the cost.
                comp.allocator.reset()
                comp.boot()
            else:
                blob = self.snapshots.restore(snap, comp.regions)
                comp.import_state(blob)
                comp.state = ComponentState.BOOTED
                comp._boot_count += 1
                record.snapshot_bytes += snap.snapshot_bytes
            # Runtime data first (accept-created sockets occupy their
            # ids before replayed allocations pick lowest-free slots),
            # then the encapsulated replay.
            runtime_blob = self._runtime_data.get(member)
            if runtime_blob is not None:
                comp.import_runtime_data(runtime_blob)
            self.supervisor.phase_mark("checkpoint")
            log = self.logs.get(member)
            if log is None or not self.config.logging_enabled:
                return
            if not replay:
                # Fresh restart: the member keeps its checkpoint state
                # only.  The unreplayed log no longer describes the
                # component's state — clear it so a later reboot does
                # not replay stale history onto the checkpoint.
                log.clear()
                return
            session = ReplaySession(member)
            previous = self._vamp.replay_session
            self._vamp.replay_session = session
            obs = self.sim.obs
            pspan = None
            if obs is not None:
                pspan = obs.open_span("replay", member,
                                      entries=len(log))
            try:
                stats = self.restorer.replay(comp, log, session)
            except ComponentFailure as again:
                self.crashed = True
                raise RecoveryFailed(member, again) from again
            except ReplayMismatch as diverged:
                # The recorded log no longer matches the component's
                # behaviour (corrupt log / incompatible code): the
                # restoration cannot be trusted — fail-stop.
                self.crashed = True
                raise RecoveryFailed(member, diverged) from diverged
            finally:
                self._vamp.replay_session = previous
                self.supervisor.phase_mark("replay")
                if obs is not None:
                    obs.close_span(pspan)
            record.entries_replayed += stats.entries_replayed
            record.retvals_fed += stats.retvals_fed
            if obs is not None:
                obs.observe("replay.entries", stats.entries_replayed)
        finally:
            if sticky_panic is not None:
                comp.injected_panic = sticky_panic
                comp.injected_panic_count = sticky_count
                comp.injected_panic_sticky = True

    # --- §VIII extensions ---------------------------------------------------------------------

    def register_variant(self, name: str, variant_cls: type) -> None:
        """Register a multi-version alternative for a component (§VIII).

        When the rebooted component fails *again* (a deterministic
        bug), the runtime swaps the variant in — "whose functionalities
        and interfaces are the same as in the failed one, thereby
        eliminating the execution of the buggy code path".
        """
        if name not in self.image:
            raise ValueError(f"no component {name!r} in this image")
        if getattr(variant_cls, "NAME", None) != name:
            raise ValueError(
                f"variant class NAME {getattr(variant_cls, 'NAME', None)!r}"
                f" must equal {name!r}")
        original = type(self.component(name))
        missing = set(original.interface()) - set(variant_cls.interface())
        if missing:
            raise ValueError(
                f"variant of {name!r} is missing interface functions: "
                f"{sorted(missing)}")
        self.variants[name] = variant_cls

    def swap_in_variant(self, name: str,
                        reason: str = "variant swap") -> RebootRecord:
        """Replace a component instance with its registered variant and
        restore its running state via the normal recovery path."""
        variant_cls = self.variants.get(name)
        if variant_cls is None:
            raise ValueError(f"no variant registered for {name!r}")
        self._install_instance(name, variant_cls(self.sim))
        self.sim.emit("variant", "swapped", component=name,
                      cls=variant_cls.__name__)
        return self.reboot_component(name, reason=reason)

    def _install_instance(self, name: str, fresh: Component) -> None:
        """Wire a new component instance into the running image."""
        from ..unikernel.component import KernelAPI

        fresh.os = KernelAPI(self._vamp, name)
        key = self._unit_keys[self.scheduler.unit_of(name)]
        for region in fresh.regions:
            self.domains.tag_region(region, key)
        self.image.components[name] = fresh
        shrinker = self.shrinkers.get(name)
        if shrinker is not None:
            shrinker.component = fresh

    def on_fail_stop(self, callback: Any) -> None:
        """Register a graceful-termination hook (§VIII).

        Called (in registration order) when recovery has failed and the
        application is about to fail-stop — the window in which
        undamaged components can still save state ("storing the current
        in-memory KVs in storage just before a fail-stop").
        """
        self._fail_stop_hooks.append(callback)

    def fail_stop(self, component: str,
                  cause: Optional[BaseException] = None) -> Any:
        """Graceful termination: run the hooks, then fail-stop."""
        self.sim.emit("reboot", "fail_stop", component=component)
        for hook in self._fail_stop_hooks:
            try:
                hook()
            except Exception as exc:  # a dying system: best effort only
                self.sim.emit("reboot", "fail_stop_hook_error",
                              component=component, error=str(exc))
        self.crashed = True
        self.slo.note_state(component, "dead",
                            ledger_now_us(self.sim.ledger))
        emit_postmortem(self, "fail_stop", component,
                        reason=str(cause) if cause is not None
                        else "recovery exhausted")
        raise RecoveryFailed(component, cause) from cause

    def update_component(self, name: str,
                         new_cls: type) -> RebootRecord:
        """Live component update (§VIII "Reboots for Component Updates").

        Uses the reboot machinery to replace a component's *code* while
        carrying its *current* state across: export state from the old
        version, install the new instance, import the state, refresh
        the post-boot checkpoint and clear the (now superseded) log.
        """
        comp = self.component(name)
        if not comp.REBOOTABLE:
            raise UnrebootableComponent(
                name, "its state is shared with the host (§VIII)")
        if getattr(new_cls, "NAME", None) != name:
            raise ValueError(
                f"update class NAME must equal {name!r}")
        start = self.sim.clock.now_us
        unit = self.scheduler.unit_of(name)
        self.sim.emit("update", "start", component=name,
                      cls=new_cls.__name__)
        self.scheduler.mark_rebooting(name)
        self.sim.charge("reboot_teardown", self.sim.costs.reboot_teardown)
        state = comp.export_state()
        runtime_blob = comp.export_runtime_data()
        fresh = new_cls(self.sim)
        self._install_instance(name, fresh)
        fresh.import_state(state)
        fresh.state = ComponentState.BOOTED
        if runtime_blob is not None:
            fresh.import_runtime_data(runtime_blob)
            self._runtime_data[name] = runtime_blob
        # The carried-over state becomes the new recovery baseline:
        # replaying the old version's log onto the new code would mix
        # versions, so re-checkpoint and start a fresh log.
        if fresh.STATEFUL and self.config.checkpoints_enabled:
            self.snapshots.drop(name)
            self.snapshots.take(name, fresh.regions,
                                fresh.export_state())
        log = self.logs.get(name)
        if log is not None:
            log.clear()
        self.scheduler.reattach(name)
        record = RebootRecord(
            component=name, unit=unit, members=(name,),
            reason="live-update", start_us=start,
            downtime_us=self.sim.clock.now_us - start,
            stateless=not fresh.STATEFUL)
        self.updates.append(record)
        self.sim.emit("update", "done", component=name,
                      downtime_us=record.downtime_us)
        return record

    def full_reboot(self) -> float:
        """A regular whole-application reboot.

        §IV: "Regular reboots are used for other purposes, such as
        software updates and reconfiguration ... regular reboots need
        to be used for them" — so a VampOS build keeps the conventional
        path.  Every component is rebuilt and booted from scratch, the
        VampOS machinery (threads, domains, logs, checkpoints) is
        re-initialised, and the application loses its in-memory state
        exactly as under vanilla Unikraft.  Returns the downtime.
        """
        from ..unikernel.image import ImageBuilder

        start = self.sim.clock.now_us
        app_bytes = self.image.total_memory_bytes()
        self.sim.emit("reboot", "full_start", app=self.image.app_name,
                      mode=self.MODE)
        self.sim.charge("full_reboot", self.sim.costs.full_reboot_fixed)
        listeners = self._full_reboot_listeners
        previous_full_reboots = self._full_reboots
        spec = self.image.spec
        config = self.config
        num_keys = self.domains.num_keys
        fresh_image = ImageBuilder().build(spec, self.sim)
        # Rebuild every subsystem against the fresh image (threads,
        # protection domains, message domain, logs, checkpoints).
        self.__init__(fresh_image, config,  # type: ignore[misc]
                      num_protection_keys=num_keys)
        self._full_reboot_listeners = listeners
        self.boot()
        for listener in listeners:
            listener()
        self.sim.charge(
            "full_reboot_restore",
            app_bytes * self.sim.costs.full_reboot_restore_per_byte)
        downtime = self.sim.clock.now_us - start
        self._full_reboots = previous_full_reboots + 1
        self.sim.emit("reboot", "full_done", app=self.image.app_name,
                      downtime_us=downtime)
        return downtime

    def rejuvenate(self, name: str) -> RebootRecord:
        """Proactive software rejuvenation of one component (§IV)."""
        return self.reboot_component(name, reason="rejuvenation")

    def heartbeat(self) -> List[RebootRecord]:
        """The message thread's heart-beat sweep (§V-A).

        Detects components that failed *outside* a call path — a FAILED
        state left by an error handler, or a corrupted memory region
        from a hardware fault — and reboots them.  Applications call
        this from their idle loop (ServerApp.poll does).

        The sweep also drives the recovery supervisor's probation:
        degraded components whose quarantine has elapsed are probed
        (and restored on success); components still in quarantine are
        skipped — rebooting them here would defeat the degradation.

        When several units have failed at once (a crash storm) and the
        parallel-recovery planner is armed, the sweep collects the due
        set first and hands it to :meth:`reboot_components`, which
        overlaps independent units' reboots as virtual-time tracks.
        With the planner off (``reference_mode``) or a watched clock,
        the original one-at-a-time sweep runs bit-identically.
        """
        self.sim.charge("heartbeat", self.sim.costs.heartbeat_scan)
        obs = self.sim.obs
        if obs is not None:
            obs.sample_health(self)
        self._root_heartbeat()
        records: List[RebootRecord] = list(self.supervisor.tick())
        if FLAGS.parallel_recovery and not self.sim.clock._watchers:
            due = self._sweep_due()
            if len(due) > 1:
                records.extend(self.reboot_components(
                    due, reason="heartbeat",
                    precheck=self._heartbeat_due_detail))
            elif due:
                detail = self._heartbeat_due_detail(due[0])
                if detail is not None:
                    self.detector.record(due[0], "heartbeat", detail)
                    records.append(self.reboot_component(
                        due[0], reason="heartbeat"))
            return records
        swept = set()
        for name in self.image.boot_order:
            comp = self.image.component(name)
            if not comp.REBOOTABLE or name in swept:
                continue
            if self.supervisor.is_degraded(name):
                continue
            detail = self._heartbeat_due_detail(name)
            if detail is not None:
                self.detector.record(name, "heartbeat", detail)
                record = self.reboot_component(name, reason="heartbeat")
                swept.update(record.members)
                records.append(record)
        return records

    def _heartbeat_due_detail(self, name: str) -> Optional[str]:
        """The serial sweep's due check for one component: the detail
        string to record when it needs a reboot, ``None`` when healthy.

        Also the planner's *precheck*: re-evaluated right before each
        planned track executes, because an earlier reboot's replay can
        recover a later due component through the supervisor — the
        serial sweep would find it healthy at its turn and skip it.
        """
        comp = self.image.component(name)
        failed = comp.state is ComponentState.FAILED
        corrupted = any(region.corrupted for region in comp.regions)
        sensed = self.detector.sense(comp)
        if failed or corrupted or sensed:
            return sensed or ("failed state" if failed
                              else "corrupted region")
        return None

    def _sweep_due(self) -> List[str]:
        """Collect the heartbeat sweep's due components, at most one
        per unit, without rebooting (or detector-recording) anything.

        Mirrors the serial sweep's checks exactly; a unit already due
        skips its remaining merge-group members because the unit reboot
        restores them all (the serial sweep would find them healed).
        The detector record happens later, right before each reboot
        (via the :meth:`_heartbeat_due_detail` precheck), exactly where
        the serial sweep records it.
        """
        due: List[str] = []
        due_units = set()
        for name in self.image.boot_order:
            comp = self.image.component(name)
            if not comp.REBOOTABLE:
                continue
            if self.scheduler.unit_of(name) in due_units:
                continue
            if self.supervisor.is_degraded(name):
                continue
            if self._heartbeat_due_detail(name) is not None:
                due.append(name)
                due_units.add(self.scheduler.unit_of(name))
        return due

    def reboot_components(
            self, names: List[str], reason: str = "manual",
            replay: bool = True,
            precheck: Optional[Callable[[str], Optional[str]]] = None,
    ) -> List[RebootRecord]:
        """Reboot several components as one planned recovery episode.

        With the parallel-recovery planner armed (``fastpath.FLAGS``,
        unwatched clock) the failed units are partitioned into
        dependency levels — derived from the indexed call-log edges
        unioned with the declared component dependencies — and their
        reboot tracks overlap in virtual time, max-merging the clock
        (see :mod:`repro.recovery`).  Charges are issued in the exact
        serial order, so ledger totals and counts are bit-identical to
        the serial loop; only the elapsed clock shrinks.  Otherwise
        (planner off, watched clock, dependency cycle, or a single
        unit) the plain serial loop runs.

        ``precheck`` (the heartbeat sweep passes
        :meth:`_heartbeat_due_detail`) re-evaluates each component just
        before its reboot and skips it when it healed in the meantime —
        an earlier reboot's replay can recover a later component
        through the supervisor, and the serial sweep would find it
        healthy at its turn.  A still-due component is recorded with
        the detector first, exactly like the serial sweep does.
        """
        def do_reboot(name: str) -> Optional[RebootRecord]:
            if precheck is not None:
                detail = precheck(name)
                if detail is None:
                    return None
                self.detector.record(name, reason, detail)
            return self.reboot_component(name, reason=reason,
                                         replay=replay)

        sup = self.supervisor
        # A multi-unit episode (crash-storm sweep) gets its own clock;
        # single names fall through to reboot_component's own "sweep".
        clock = (sup.phase_push("storm")
                 if len(names) > 1 and not sup._phase_clocks else None)
        try:
            if (len(names) > 1 and FLAGS.parallel_recovery
                    and not self.sim.clock._watchers):
                from ..recovery import execute_plan, plan_for_kernel
                plan = plan_for_kernel(self, names)
                sup.phase_mark("plan")
                if plan.parallel:
                    return execute_plan(self, plan, reason=reason,
                                        replay=replay, reboot=do_reboot)
            records = []
            for name in names:
                record = do_reboot(name)
                if record is not None:
                    records.append(record)
            return records
        finally:
            if clock is not None:
                sup.phase_pop(clock)

    def rejuvenate_all(self) -> List[RebootRecord]:
        """Rejuvenate every rebootable component, one by one (§VII-D).

        Degraded (quarantined) components are skipped: they come back
        through the supervisor's probation, not a blanket sweep.
        """
        records = []
        for name in self.image.boot_order:
            if not self.image.component(name).REBOOTABLE:
                continue
            if self.supervisor.is_degraded(name):
                continue
            records.append(self.rejuvenate(name))
        return records

    # --- root rejuvenation (ReHype: reboot the root under live components) ---

    def rejuvenate_root(self, reason: str = "proactive") \
            -> RootRebootRecord:
        """Microreboot the kernel itself under the live components.

        Checkpoint the kernel-side state (run queue, in-flight message
        slots, supervisor policy) into a :class:`RootCheckpoint`, tear
        the root internals down and rebuild them fresh (recompiled
        crossing plans, fresh protection domains, a fresh message
        arena), then re-attach the live components — their memory
        regions, call logs, snapshots and runtime data are never
        touched, and in-flight dispatch frames resume exactly once
        against the restored state.  Kernel-side wear (orphaned message
        slots, stale crossing-plan entries, tombstones) is reclaimed by
        the teardown; a pending root panic is absorbed.  Callers
        observe only the bounded virtual-time stall charged here
        (``root_checkpoint`` + ``root_reboot`` + ``root_reattach``).
        """
        sim = self.sim
        start = sim.clock.now_us
        wear = self.root_wear
        if sim.trace.wants("reboot"):
            sim.emit("reboot", "root_start", reason=reason,
                     leaked_bytes=wear.leaked_bytes())
        obs = sim.obs
        rspan = None
        if obs is not None:
            obs.inc("root_reboot.count")
            rspan = obs.open_span("root_reboot", self.image.app_name,
                                  reason=reason,
                                  leaked_bytes=wear.leaked_bytes())
        sup = self.supervisor
        clock = sup.phase_push("root") if not sup._phase_clocks else None
        self.slo.note_state("ROOT", "rebooting", ledger_now_us(sim.ledger))
        try:
            sim.charge("root_checkpoint", sim.costs.root_checkpoint)
            cp, live = capture_root_checkpoint(self)
            sup.phase_mark("checkpoint")
            slots, plans, tombstones = wear.clear()
            self._reinit_root_internals()
            sim.charge("root_reboot", sim.costs.root_reboot_fixed)
            restore_root_checkpoint(self, cp, live)
            sup.phase_mark("reboot")
            sim.charge("root_reattach",
                       len(self.image.boot_order)
                       * sim.costs.root_reattach_per_component)
            sup.phase_mark("resume")
            self.root_panicked = None
            self.slo.note_state("ROOT", "up", ledger_now_us(sim.ledger))
        finally:
            if clock is not None:
                sup.phase_pop(clock)
            if obs is not None:
                obs.close_span(rspan, downtime_us=sim.clock.now_us
                               - start)
        record = RootRebootRecord(
            reason=reason, start_us=start,
            downtime_us=sim.clock.now_us - start,
            in_flight_resumed=len(cp.messages["slots"]),
            chain_depth=len(cp.scheduler["active_chain"]),
            slots_dropped=slots, plans_dropped=plans,
            tombstones_dropped=tombstones)
        self.root_reboots.append(record)
        self.supervisor.telemetry.note_root_reboot(
            record.downtime_us, slots, plans, tombstones)
        if obs is not None:
            obs.observe("root_reboot.downtime_us", record.downtime_us)
        if sim.trace.wants("reboot"):
            sim.emit("reboot", "root_done", reason=reason,
                     downtime_us=record.downtime_us,
                     in_flight_resumed=record.in_flight_resumed,
                     slots_dropped=slots, plans_dropped=plans,
                     tombstones_dropped=tombstones)
        return record

    def _reinit_root_internals(self) -> None:
        """Tear down and rebuild the kernel-side internals in place.

        Object *identity* is the contract here: in-flight dispatch
        frames (and compiled crossing plans) hold the scheduler, the
        message domain, the dispatcher, the supervisor and component
        logs — so those objects survive and their ``__init__`` is
        re-run to refresh the internals (the same precedent
        ``full_reboot`` sets for the kernel itself).  Everything
        component-side — regions, call logs, snapshots, runtime data —
        is deliberately left alone.
        """
        config = self.config
        image = self.image
        num_keys = self.domains.num_keys
        units, member_map = build_units(image.boot_order, config.merges)
        # Fresh scheduler internals on the same object.
        if config.scheduler == SCHEDULER_ROUND_ROBIN:
            self.scheduler.__init__(  # type: ignore[misc]
                self.sim, units, member_map)
        else:
            self.scheduler.__init__(  # type: ignore[misc]
                self.sim, units, image.dependency_graph(), member_map)
        # Fresh protection domains, keys and PKRUs (charge-free: only
        # residency swaps are priced).  Component regions are re-tagged
        # — a kernel-side attribute — never written.
        if config.virtualize_keys:
            self.domains = VirtualizedProtectionDomains(
                num_keys, enforce=config.enforce_mpk, sim=self.sim)
        else:
            self.domains = ProtectionDomains(num_keys,
                                             enforce=config.enforce_mpk)
        self.pkrus = {}
        self._tag_domains(units, member_map, num_keys)
        # Fresh message arena bookkeeping on the same domain object.
        self.msg_domain = Region("MSGDOM.region", RegionKind.MESSAGE,
                                 config.msg_domain_bytes, owner="MSGDOM",
                                 backed=False)
        self.domains.tag_region(self.msg_domain, self._msgdom_key)
        self.message_domain.__init__(  # type: ignore[misc]
            self.sim, self.msg_domain)
        # Drop the dispatcher's bound handles: the next invoke rebinds
        # and recompiles every crossing plan against the fresh root.
        self._vamp._bound = False

    def _root_heartbeat(self) -> None:
        """The heartbeat's root-health check: absorb a pending root
        panic, and proactively rejuvenate once accumulated wear crosses
        the configured byte threshold (Microreboot's cheap-enough-to-
        use-proactively argument, applied to the root)."""
        if self.root_panicked is not None:
            self._root_recover(self.root_panicked)
            return
        if (self.config.root_rejuvenation_enabled
                and self.root_wear.leaked_bytes()
                >= self.config.root_wear_threshold_bytes):
            self.rejuvenate_root(reason="wear")

    def _root_recover(self, reason: str) -> None:
        """A root panic surfaced: rejuvenate when armed, else die —
        the root is the one component a component-level reboot cannot
        reach, so without rejuvenation this is terminal."""
        if self.config.root_rejuvenation_enabled:
            self.rejuvenate_root(reason=f"panic: {reason}")
            return
        self.sim.emit("fault", "root_panic", reason=reason)
        self.crashed = True
        self.slo.note_state("ROOT", "dead",
                            ledger_now_us(self.sim.ledger))
        emit_postmortem(self, "root_panic", "ROOT", reason=reason)
        raise KernelPanic(component="ROOT", cause=None)

    # --- fault surface ------------------------------------------------------------------------

    def attempt_wild_write(self, source: str, victim: str) -> None:
        """A buggy component writes into another component's memory.

        Under VampOS the write is stopped by the protection domain and
        the *faulty* component is rebooted; the victim is untouched
        (§V-D).  Contrast with the vanilla kernel, where the write
        lands and corrupts the victim.
        """
        victim_comp = self.component(victim)
        source_unit = self.scheduler.unit_of(source)
        pkru = self.pkrus[source_unit if source != APP else APP_THREAD]
        try:
            self.domains.check(pkru, victim_comp.heap, write=True)
        except ProtectionFault as fault:
            self.detector.record(source, "protection_fault", str(fault))
            self.sim.emit("fault", "wild_write_blocked", source=source,
                          victim=victim)
            self.reboot_component(source, reason="protection_fault")
            return
        # Same protection domain (merged components): the write lands.
        victim_comp.heap.mark_corrupted()
        self.sim.emit("fault", "wild_write_landed", source=source,
                      victim=victim)

    # --- accounting (Fig. 7b) ---------------------------------------------------------------------

    def log_space_bytes(self) -> int:
        return sum(log.space_bytes() for log in self.logs.values())

    def memory_overhead_bytes(self) -> int:
        """VampOS's extra memory: message domain + checkpoints + logs."""
        return (self.msg_domain.size_bytes
                + self.snapshots.total_bytes()
                + self.log_space_bytes())

    def total_memory_bytes(self) -> int:
        return self.image.total_memory_bytes() + self.memory_overhead_bytes()


def _is_scalar_key(value: Any) -> bool:
    return isinstance(value, (int, str)) and not isinstance(value, bool)


def build_vampos(spec: "Any", sim: Simulation,
                 config: VampConfig = DAS) -> VampOSKernel:
    """Convenience: link and boot an image under VampOS."""
    from ..unikernel.image import ImageBuilder

    image = ImageBuilder().build(spec, sim)
    kernel = VampOSKernel(image, config)
    kernel.boot()
    return kernel
