"""Encapsulated restoration (§V-B, Fig. 3).

After a stateful component's memory is rolled back to its post-boot
checkpoint, its running state is rebuilt by replaying the selected
function calls from the log.  The restoration is *encapsulated*: while
the component replays, every call it makes to another component is
intercepted and answered from the recorded return values — the running
components never execute anything, so their state is untouched.

The replay also:

* skips in-flight (incomplete) entries — the failed call that triggered
  the reboot is retried separately, after restoration;
* applies synthetic ``__setstate__`` entries produced by forced log
  shrinking directly via :meth:`Component.apply_key_state`;
* pins descriptor ids to the logged return values so allocations land
  exactly where they originally did;
* re-raises recorded :class:`SyscallError` outcomes so the component
  takes the same internal branches as the original execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..sim.engine import Simulation
from ..unikernel.component import Component
from ..unikernel.errors import ComponentFailure, SyscallError, UnikernelError
from .calllog import CallLogEntry, ComponentCallLog, _copy_payload


class ReplayMismatch(UnikernelError):
    """The replayed call sequence diverged from the recorded one."""

    def __init__(self, component: str, expected: str, got: str) -> None:
        super().__init__(
            f"replay of {component!r} diverged: expected outbound call "
            f"{expected}, component issued {got}")
        self.component = component


@dataclass
class ReplayStats:
    entries_replayed: int = 0
    synthetic_applied: int = 0
    retvals_fed: int = 0
    skipped_incomplete: int = 0
    result_mismatches: int = 0


class ReplaySession:
    """Per-reboot state the dispatcher consults to intercept calls."""

    def __init__(self, component: str) -> None:
        self.component = component
        self._entry: Optional[CallLogEntry] = None
        self._cursor = 0
        self.retvals_fed = 0

    def begin_entry(self, entry: CallLogEntry) -> None:
        self._entry = entry
        self._cursor = 0

    def next_retval(self, target: str, func: str) -> Any:
        """Answer an outbound call from the recorded return values."""
        entry = self._entry
        if entry is None or self._cursor >= len(entry.nested):
            raise ReplayMismatch(
                self.component, "<no further recorded calls>",
                f"{target}.{func}")
        record = entry.nested[self._cursor]
        if record.target != target or record.func != func:
            raise ReplayMismatch(
                self.component, f"{record.target}.{record.func}",
                f"{target}.{func}")
        self._cursor += 1
        self.retvals_fed += 1
        if record.error is not None:
            raise SyscallError(record.error[0], record.error[1])
        # same copy fast path as recording: immutable results need no
        # defensive copy before being handed to the replaying component
        return _copy_payload(record.result)


class EncapsulatedRestorer:
    """Drives the replay of one component's log."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim

    def replay(self, comp: Component, log: ComponentCallLog,
               session: ReplaySession) -> ReplayStats:
        """Replay ``log`` into ``comp``.

        The caller must have installed ``session`` into the dispatcher
        so outbound calls are intercepted; this method only walks the
        entries.  Raises :class:`ComponentFailure` if a deterministic
        bug re-triggers (the caller converts that to fail-stop) and
        :class:`ReplayMismatch` on divergence.
        """
        stats = ReplayStats()
        interface = comp.interface()
        probes = self.sim.probes
        for entry in log.entries:
            if probes is not None:
                probes.fire("replay_step", component=comp.NAME,
                            func=entry.func,
                            synthetic=entry.is_synthetic)
            if entry.is_synthetic:
                self.sim.charge("replay_call", self.sim.costs.replay_call)
                key, patch = entry.synthetic_patch
                comp.apply_key_state(key, patch)
                stats.synthetic_applied += 1
                continue
            if not entry.completed:
                stats.skipped_incomplete += 1
                continue
            info = interface.get(entry.func)
            if info is None:
                raise ReplayMismatch(comp.NAME, entry.func,
                                     "<function no longer exported>")
            self.sim.charge("replay_call", self.sim.costs.replay_call)
            session.begin_entry(entry)
            if info.allocates_ids:
                comp.set_forced_ids(_ids_from_result(entry.result))
            try:
                result = comp.call_interface(entry.func, entry.args,
                                             entry.kwargs)
            except SyscallError:
                # The original call may have failed the same way; a
                # replayed errno is not a recovery failure.
                result = None
            finally:
                comp.set_forced_ids([])
            stats.entries_replayed += 1
            if entry.result is not None and result != entry.result:
                stats.result_mismatches += 1
                # wants() guard: the reprs below are the expensive part.
                if self.sim.trace.wants("restore"):
                    self.sim.emit("restore", "result_mismatch",
                                  component=comp.NAME, func=entry.func,
                                  expected=repr(entry.result)[:80],
                                  got=repr(result)[:80])
        stats.retvals_fed = session.retvals_fed
        if self.sim.trace.wants("restore"):
            self.sim.emit("restore", "replayed", component=comp.NAME,
                          entries=stats.entries_replayed,
                          synthetic=stats.synthetic_applied,
                          retvals=stats.retvals_fed)
        return stats


def _ids_from_result(result: Any) -> List[int]:
    if isinstance(result, bool):
        return []
    if isinstance(result, int):
        return [result]
    if isinstance(result, (tuple, list)):
        return [v for v in result if isinstance(v, int)
                and not isinstance(v, bool)]
    return []
