"""Component-thread scheduling (§V-A, §V-C).

VampOS binds a thread to every component (merged components share one)
and components interact purely by message passing; when a message is
sent, the internal scheduler must dispatch the receiving component's
thread before the call makes progress.  Two schedulers are evaluated in
the paper:

* **Round-robin** (VampOS-Noop): the scheduler cycles through the
  thread ring; every component polled before the right one is a wasted
  dispatch (the components poll their message domains, §V-C).
* **Dependency-aware** (VampOS-DaS): the scheduler knows which
  components each component may invoke (the image's dependency graph,
  "specified in advance") and dispatches the target directly.

Both schedulers also dispatch the *message thread* around logged calls:
it stores the arguments before the target runs and preserves the return
value afterwards (§V-C).

Every dispatch charges the cost model (context switch + PKRU write;
wasted polls for round-robin).  The schedulers also track statistics
the ablation benchmarks report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..sim.engine import Simulation

#: pseudo-thread names
APP_THREAD = "APP"
MSG_THREAD = "MSG"


class ThreadState(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    BLOCKED = "blocked"
    REBOOTING = "rebooting"


@dataclass
class ComponentThread:
    """Bookkeeping for one schedulable unit (a component or merge group)."""

    name: str
    #: components executed by this thread (≥2 when merged)
    members: List[str] = field(default_factory=list)
    state: ThreadState = ThreadState.IDLE
    dispatches: int = 0
    #: extra threads spawned on demand because this one was blocked (§V-A)
    spawned: int = 0


@dataclass
class SchedulerStats:
    dispatches: int = 0
    wasted_polls: int = 0
    msg_thread_dispatches: int = 0
    spawns: int = 0
    dependency_lookups: int = 0


class BaseScheduler:
    """Shared machinery: the thread table and dispatch accounting."""

    KIND = "base"

    def __init__(self, sim: Simulation, units: Sequence[str],
                 member_map: Optional[Dict[str, str]] = None) -> None:
        """``units`` are the schedulable thread names (APP first, MSG
        last by convention); ``member_map`` maps component -> unit."""
        self.sim = sim
        self.threads: Dict[str, ComponentThread] = {}
        for unit in units:
            self.threads[unit] = ComponentThread(name=unit, members=[unit])
        self.member_map = dict(member_map or {})
        for component, unit in self.member_map.items():
            if unit in self.threads and component not in \
                    self.threads[unit].members:
                self.threads[unit].members.append(component)
        self.stats = SchedulerStats()
        self.current: str = units[0] if units else APP_THREAD
        #: units on the current synchronous call chain (for spawn detection)
        self._active_chain: List[str] = [self.current]

    # --- mapping -------------------------------------------------------------------

    def unit_of(self, component: str) -> str:
        return self.member_map.get(component, component)

    def same_unit(self, a: str, b: str) -> bool:
        return self.unit_of(a) == self.unit_of(b)

    # --- the dispatch protocol --------------------------------------------------------

    def dispatch(self, to_component: str, needs_msg_thread: bool) -> None:
        """Switch execution to ``to_component``'s thread.

        ``needs_msg_thread`` is set for logged calls: the message thread
        runs first to store the arguments (§V-C).
        """
        unit = self.unit_of(to_component)
        if needs_msg_thread:
            self._switch_to(MSG_THREAD, poll=True)
            self.stats.msg_thread_dispatches += 1
        if unit in self._active_chain:
            # The bound thread is blocked inside the call chain; VampOS
            # attaches a freshly spawned thread instead (§V-A).
            self.sim.charge("thread_spawn", self.sim.costs.thread_spawn)
            self.stats.spawns += 1
            thread = self.threads.get(unit)
            if thread is not None:
                thread.spawned += 1
        self._switch_to(unit, poll=True)
        self._active_chain.append(unit)
        thread = self.threads.get(unit)
        if thread is not None:
            thread.state = ThreadState.RUNNING
            thread.dispatches += 1

    def complete(self, from_component: str, to_component: str,
                 needs_msg_thread: bool) -> None:
        """Return the reply: switch back to the caller's thread."""
        from_unit = self.unit_of(from_component)
        if self._active_chain and self._active_chain[-1] == from_unit:
            self._active_chain.pop()
        thread = self.threads.get(from_unit)
        if thread is not None and from_unit not in self._active_chain:
            thread.state = ThreadState.IDLE
        if needs_msg_thread:
            self._switch_to(MSG_THREAD, poll=True)
            self.stats.msg_thread_dispatches += 1
        self._switch_to(self.unit_of(to_component), poll=True)

    def _switch_to(self, unit: str, poll: bool) -> None:
        raise NotImplementedError

    def _charge_switch(self) -> None:
        sim = self.sim
        costs = sim.costs
        sim.charge("thread_switch", costs.thread_switch)
        sim.charge("pkru_write", costs.pkru_write)
        self.stats.dispatches += 1

    # --- the root-rejuvenation state boundary ------------------------------------------
    #
    # The run queue (thread states, the active call chain, the cursor,
    # the statistics) is *kernel-side* state: a root microreboot must
    # carry it across the teardown while the thread table's objects
    # stay identity-stable for any in-flight dispatch frames.  These
    # two methods are the serialization boundary the fleet layer will
    # reuse — everything they exchange is JSON-safe.

    def export_run_state(self) -> Dict[str, object]:
        """The run queue as plain data (for a ``RootCheckpoint``)."""
        stats = self.stats
        state: Dict[str, object] = {
            "current": self.current,
            "active_chain": list(self._active_chain),
            "threads": [[name, thread.state.value, thread.dispatches,
                         thread.spawned]
                        for name, thread in sorted(self.threads.items())],
            "stats": [stats.dispatches, stats.wasted_polls,
                      stats.msg_thread_dispatches, stats.spawns,
                      stats.dependency_lookups],
        }
        pos = getattr(self, "_pos", None)
        if pos is not None:
            state["pos"] = pos
        fallback = getattr(self, "fallback_dispatches", None)
        if fallback is not None:
            state["fallback_dispatches"] = fallback
        return state

    def restore_run_state(self, state: Dict[str, object],
                          threads: Optional[Dict[str, ComponentThread]]
                          = None) -> None:
        """Load an :meth:`export_run_state` snapshot into this (freshly
        re-initialised) scheduler.  ``threads`` optionally carries the
        pre-teardown thread objects so compiled crossing plans holding
        them stay valid; checkpointed fields overwrite theirs either
        way."""
        if threads:
            for name, thread in threads.items():
                if name in self.threads:
                    self.threads[name] = thread
        for name, value, dispatches, spawned in state["threads"]:
            thread = self.threads.get(name)
            if thread is None:
                continue
            thread.state = ThreadState(value)
            thread.dispatches = int(dispatches)
            thread.spawned = int(spawned)
        self.current = str(state["current"])
        self._active_chain[:] = [str(u) for u in state["active_chain"]]
        (self.stats.dispatches, self.stats.wasted_polls,
         self.stats.msg_thread_dispatches, self.stats.spawns,
         self.stats.dependency_lookups) = (int(v)
                                           for v in state["stats"])
        if "pos" in state and hasattr(self, "_pos"):
            self._pos = int(state["pos"])
        if "fallback_dispatches" in state \
                and hasattr(self, "fallback_dispatches"):
            self.fallback_dispatches = int(state["fallback_dispatches"])

    # --- reboot integration -----------------------------------------------------------

    def mark_rebooting(self, component: str) -> None:
        thread = self.threads.get(self.unit_of(component))
        if thread is not None:
            thread.state = ThreadState.REBOOTING

    def reattach(self, component: str) -> None:
        """Attach a fresh thread after a component reboot."""
        self.sim.charge("thread_reattach", self.sim.costs.thread_reattach)
        thread = self.threads.get(self.unit_of(component))
        if thread is not None:
            thread.state = ThreadState.IDLE


class RoundRobinScheduler(BaseScheduler):
    """The VampOS-Noop baseline: cycle the ring until the target."""

    KIND = "round-robin"

    def __init__(self, sim: Simulation, units: Sequence[str],
                 member_map: Optional[Dict[str, str]] = None) -> None:
        super().__init__(sim, units, member_map)
        self._ring: List[str] = list(units)
        self._pos = 0

    def _switch_to(self, unit: str, poll: bool) -> None:
        if unit == self.current:
            return
        if poll and unit in self._ring:
            target_idx = self._ring.index(unit)
            # Walk the ring forward; each unit polled with no pending
            # message for it wastes a dispatch.
            steps = (target_idx - self._pos) % len(self._ring)
            wasted = max(0, steps - 1)
            if wasted:
                self.sim.charge("wasted_poll",
                                wasted * self.sim.costs.wasted_poll)
                self.stats.wasted_polls += wasted
            self._pos = target_idx
        self._charge_switch()
        self.current = unit


class DependencyAwareScheduler(BaseScheduler):
    """VampOS-DaS: infer the next thread from the dependency graph."""

    KIND = "dependency-aware"

    def __init__(self, sim: Simulation, units: Sequence[str],
                 dependency_graph: Dict[str, List[str]],
                 member_map: Optional[Dict[str, str]] = None) -> None:
        super().__init__(sim, units, member_map)
        # Lift the component-level graph to thread units, adding the
        # reverse edges (replies flow back) and the APP/MSG threads.
        self._candidates: Dict[str, Set[str]] = {u: set() for u in units}
        for src, dsts in dependency_graph.items():
            src_unit = self.unit_of(src)
            for dst in dsts:
                dst_unit = self.unit_of(dst)
                if src_unit == dst_unit:
                    continue
                self._candidates.setdefault(src_unit, set()).add(dst_unit)
                self._candidates.setdefault(dst_unit, set()).add(src_unit)
        for unit in units:
            if unit in (APP_THREAD, MSG_THREAD):
                continue
            # The application may call any component's POSIX surface and
            # the message thread interleaves with everyone.
            self._candidates.setdefault(APP_THREAD, set()).add(unit)
            self._candidates.setdefault(unit, set()).add(APP_THREAD)
            self._candidates.setdefault(MSG_THREAD, set()).add(unit)
            self._candidates.setdefault(unit, set()).add(MSG_THREAD)
        self._candidates.setdefault(APP_THREAD, set()).add(MSG_THREAD)
        self._candidates.setdefault(MSG_THREAD, set()).add(APP_THREAD)
        self.fallback_dispatches = 0

    def candidates_of(self, unit: str) -> Set[str]:
        return set(self._candidates.get(unit, set()))

    def _switch_to(self, unit: str, poll: bool) -> None:
        if unit == self.current:
            return
        sim = self.sim
        costs = sim.costs
        sim.charge("dependency_lookup", costs.dependency_lookup)
        self.stats.dependency_lookups += 1
        if poll:
            cands = self._candidates.get(self.current)
            if cands is None or unit not in cands:
                # Not predicted by the correlation table: fall back to
                # a short scan over the candidate set.
                scan = len(cands) if cands else 0
                if scan:
                    sim.charge("wasted_poll", scan * costs.wasted_poll)
                    self.stats.wasted_polls += scan
                self.fallback_dispatches += 1
        self._charge_switch()
        self.current = unit


def build_units(components: Sequence[str],
                merges: Dict[str, Sequence[str]]) -> \
        "tuple[List[str], Dict[str, str]]":
    """Compute the thread-unit list and component→unit map.

    Merge groups collapse their members into one thread named after the
    group; everything else gets its own thread.  The APP thread comes
    first and the MSG thread last, matching the dispatch conventions.
    """
    member_map: Dict[str, str] = {}
    for group, members in merges.items():
        for member in members:
            member_map[member] = group
    units: List[str] = [APP_THREAD]
    seen: Set[str] = set()
    for component in components:
        unit = member_map.get(component, component)
        if unit not in seen:
            seen.add(unit)
            units.append(unit)
    units.append(MSG_THREAD)
    return units, member_map
