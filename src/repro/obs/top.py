"""``repro top`` — an ASCII dashboard over a saved flight recording.

Renders, from a recording produced by ``repro run --obs``:

* the hottest virtual-time stacks (the profiler ledger) as a bar chart
  plus a per-mechanism leaf summary;
* the busiest counters;
* every histogram as a one-line summary (count / mean / p50 / p99 /
  max in virtual µs);
* span traffic per category.

Everything is derived from the recording document alone, so ``top`` is
usable on recordings shipped from another machine.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..metrics.ascii import bar_chart
from .metrics import MetricsRegistry
from .profiler import leaf_totals, profile_table


def _shorten(stack: str, limit: int = 46) -> str:
    if len(stack) <= limit:
        return stack
    return "…" + stack[-(limit - 1):]


def render_top(recording: Dict[str, Any], limit: int = 12,
               width: int = 40) -> str:
    """The full dashboard as one printable string."""
    sections: List[str] = []
    profile = {key: (value["us"], value["count"])
               for key, value in recording["profile"].items()}
    rows = profile_table(profile, limit=limit)
    if rows:
        chart = bar_chart(
            [_shorten(stack) for stack, _, _, _ in rows],
            [us for _, us, _, _ in rows],
            title=f"hot stacks (virtual µs, top {len(rows)})",
            width=width, unit="us")
        sections.append(chart)
        leaves = sorted(leaf_totals(profile).items(),
                        key=lambda kv: (-kv[1], kv[0]))[:limit]
        sections.append(bar_chart(
            [leaf for leaf, _ in leaves],
            [us for _, us in leaves],
            title="by mechanism (virtual µs)", width=width, unit="us"))
    metrics = MetricsRegistry.from_dict(recording["metrics"])
    if metrics.counters:
        counters = sorted(metrics.counters.items(),
                          key=lambda kv: (-kv[1], kv[0]))[:limit]
        sections.append(bar_chart(
            [name for name, _ in counters],
            [value for _, value in counters],
            title="counters", width=width))
    if metrics.histograms:
        lines = ["histograms (virtual µs)"]
        name_width = max(len(name) for name in metrics.histograms)
        for name in sorted(metrics.histograms):
            hist = metrics.histograms[name]
            lines.append(
                f"{name.ljust(name_width)}  n={hist.count:<8d}"
                f" mean={hist.mean:>10.2f} p50={hist.quantile(0.5):>10.1f}"
                f" p99={hist.quantile(0.99):>10.1f} max={hist.max:>10.1f}")
        sections.append("\n".join(lines))
    if metrics.gauges:
        lines = ["gauges"]
        name_width = max(len(name) for name in metrics.gauges)
        for name in sorted(metrics.gauges):
            gauge = metrics.gauges[name]
            lines.append(f"{name.ljust(name_width)}  last={gauge.value:g}"
                         f" peak={gauge.peak:g} sets={gauge.sets}")
        sections.append("\n".join(lines))
    by_cat: Dict[str, int] = {}
    for span in recording["spans"]:
        by_cat[span["cat"]] = by_cat.get(span["cat"], 0) + 1
    if by_cat:
        cats = sorted(by_cat.items(), key=lambda kv: (-kv[1], kv[0]))
        sections.append(bar_chart(
            [cat for cat, _ in cats], [n for _, n in cats],
            title=f"spans by category"
                  f" ({len(recording['spans'])} total,"
                  f" {recording.get('spans_dropped', 0)} dropped)",
            width=width))
    if not sections:
        return "recording is empty (ran with --obs?)"
    sections.append(
        f"drops: spans={recording.get('spans_dropped', 0)} "
        f"(budget), trace-ring={recording.get('trace_dropped', 0)} "
        f"(evictions)")
    return "\n\n".join(sections)
