"""Causal spans: the flight recorder's qualitative half.

A :class:`Span` is one timed interval of virtual time — a top-level
request, a cross-component dispatch, a reboot, a restoration replay, a
supervisor ladder rung — with a ``parent`` id linking it into the
causal tree of the request that triggered it.  Parent ids travel with
the work: the dispatcher stamps the current span id onto the message it
pushes into the message domain, and the receiving side opens its
dispatch span under that id, so a request's full cross-component
recovery tree (crash → rung → replay → retry → reply) is
reconstructable even though the pieces were recorded by different
subsystems.

Spans are plain data.  Ids are allocated by the owning collector in
execution order, and the per-cell renumbering performed by
:meth:`repro.obs.recorder.ObsCollector.absorb` keeps them identical
between a serial run and any ``--jobs N`` sharding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One closed (or still open) interval of virtual time."""

    sid: int
    parent: Optional[int]
    track: int
    category: str
    name: str
    start_us: float
    end_us: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None \
            else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "track": self.track,
            "cat": self.category,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(sid=data["sid"], parent=data["parent"],
                   track=data["track"], category=data["cat"],
                   name=data["name"], start_us=data["start_us"],
                   end_us=data["end_us"], args=dict(data["args"]))


def renumber(spans: List[Span], span_offset: int,
             track_offset: int) -> List[Span]:
    """Shift a shard's locally-numbered spans into the global id space
    (absorbing a worker blob in canonical cell order)."""
    out: List[Span] = []
    for span in spans:
        out.append(Span(
            sid=span.sid + span_offset,
            parent=None if span.parent is None
            else span.parent + span_offset,
            track=span.track + track_offset,
            category=span.category, name=span.name,
            start_us=span.start_us, end_us=span.end_us,
            args=span.args))
    return out


def span_children(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Index spans by parent id (None keys the roots)."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent, []).append(span)
    return children


def roots_of(spans: List[Span]) -> List[Span]:
    """Spans with no parent — one per top-level request (or lifecycle
    event recorded outside any request)."""
    return [s for s in spans if s.parent is None]
