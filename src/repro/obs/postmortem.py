"""Postmortem artifacts: a self-contained record of how a kernel died.

When recovery runs out — a terminal fail-stop, a disarmed root panic,
or a crucible oracle violation — the runtime freezes everything an
operator would ask for into one JSON document: the last spans, an SLO
ledger slice, wear counters, the supervisor's ladder history and phase
attribution, recovery-plan statistics and the health-timeline tail.
The document is validated against :data:`POSTMORTEM_SCHEMA` (a
dependency-free subset of JSON Schema walked by
:func:`validate_postmortem`) and rendered by ``repro postmortem``.

Emission is deterministic: documents are stored on the kernel
(``last_postmortem``) and, when the flight recorder is attached, on
the collector in execution order — shard blobs concatenate in
canonical cell order, so recordings stay byte-identical at any
``--jobs``.  Writing files is opt-in via ``REPRO_POSTMORTEM_DIR``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .slo import ledger_now_us

#: environment variable naming a directory to drop postmortem files in
ENV_POSTMORTEM_DIR = "REPRO_POSTMORTEM_DIR"

#: spans kept in the artifact (the most recent ones)
POSTMORTEM_SPANS = 64

#: the kinds of death a postmortem documents
POSTMORTEM_KINDS = ("fail_stop", "root_panic", "oracle_violation")

#: subset-of-JSON-Schema contract every postmortem must satisfy
#: (supported keywords: type, required, properties, items, enum)
POSTMORTEM_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema", "doc", "kind", "component", "reason",
                 "now_us", "wear", "slo", "ladder", "phases",
                 "recovery_plans", "spans", "timeline", "reboots"],
    "properties": {
        "schema": {"type": "integer"},
        "doc": {"type": "string", "enum": ["repro-postmortem"]},
        "kind": {"type": "string", "enum": list(POSTMORTEM_KINDS)},
        "component": {"type": "string"},
        "reason": {"type": "string"},
        "now_us": {"type": "number"},
        "wear": {"type": "object"},
        "slo": {
            "type": "object",
            "required": ["intervals", "requests", "callers"],
            "properties": {
                "intervals": {"type": "object"},
                "requests": {"type": "object"},
                "callers": {"type": "object"},
            },
        },
        "ladder": {
            "type": "object",
            "required": ["rung_attempts", "fail_stops",
                         "recent_recoveries"],
            "properties": {
                "rung_attempts": {"type": "object"},
                "fail_stops": {"type": "object"},
                "recent_recoveries": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["component", "kind", "rung",
                                     "mttr_us", "phases"],
                    },
                },
            },
        },
        "phases": {
            "type": "object",
            "required": ["totals", "episodes"],
            "properties": {
                "totals": {"type": "object"},
                "episodes": {"type": "object"},
            },
        },
        "recovery_plans": {
            "type": "object",
            "required": ["plans", "tracks", "serial_us", "planned_us"],
            "properties": {
                "plans": {"type": "integer"},
                "tracks": {"type": "integer"},
                "serial_us": {"type": "number"},
                "planned_us": {"type": "number"},
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["sid", "cat", "name", "start_us"],
            },
        },
        "timeline": {"type": "object"},
        "reboots": {
            "type": "object",
            "required": ["component_reboots", "root_reboots", "last"],
            "properties": {
                "component_reboots": {"type": "integer"},
                "root_reboots": {"type": "integer"},
                "last": {"type": "array"},
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate_postmortem(doc: Any,
                        schema: Optional[Dict[str, Any]] = None,
                        path: str = "$") -> List[str]:
    """Walk ``doc`` against the schema subset; returns the list of
    violations (empty means valid)."""
    if schema is None:
        schema = POSTMORTEM_SCHEMA
    problems: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        py_type = _TYPES[expected]
        if not isinstance(doc, py_type) or (expected != "boolean"
                                            and isinstance(doc, bool)):
            problems.append(f"{path}: expected {expected}, "
                            f"got {type(doc).__name__}")
            return problems
    allowed = schema.get("enum")
    if allowed is not None and doc not in allowed:
        problems.append(f"{path}: {doc!r} not in {allowed}")
    if isinstance(doc, dict):
        for key in schema.get("required", ()):
            if key not in doc:
                problems.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                problems.extend(
                    validate_postmortem(doc[key], sub,
                                        f"{path}.{key}"))
    if isinstance(doc, list):
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(doc):
                problems.extend(
                    validate_postmortem(item, items,
                                        f"{path}[{index}]"))
    return problems


def build_postmortem(kernel: Any, kind: str, component: str,
                     reason: str) -> Dict[str, Any]:
    """Assemble the artifact from a (dying) VampOS kernel."""
    sim = kernel.sim
    now_us = sim.clock.now_us
    telemetry = kernel.supervisor.telemetry
    obs = sim.obs
    spans: List[Dict[str, Any]] = []
    timeline: Dict[str, Any] = {}
    if obs is not None:
        collector = obs.collector
        spans = [span.to_dict()
                 for span in collector.spans[-POSTMORTEM_SPANS:]]
        timeline = collector.timeline.tail()
    recent = telemetry.outcomes[-8:]
    last_reboots = [
        {"component": record.component, "reason": record.reason,
         "start_us": record.start_us,
         "downtime_us": record.downtime_us,
         "entries_replayed": record.entries_replayed}
        for record in kernel.reboots[-4:]]
    return {
        "schema": 1,
        "doc": "repro-postmortem",
        "kind": kind,
        "component": component,
        "reason": reason,
        "now_us": now_us,
        "wear": kernel.root_wear.counts(),
        "slo": kernel.slo.to_jsonable(
            now_us=ledger_now_us(sim.ledger)),
        "ladder": {
            "rung_attempts": {
                comp: dict(sorted(per_comp.items()))
                for comp, per_comp in
                sorted(telemetry.rung_attempts.items())},
            "fail_stops": dict(sorted(telemetry.fail_stops.items())),
            "recent_recoveries": [
                {"component": o.component, "kind": o.kind,
                 "rung": o.rung, "mttr_us": o.mttr_us,
                 "phases": dict(o.phases),
                 "phase_total_us": o.phase_total_us}
                for o in recent],
        },
        "phases": {
            "totals": {kind_: dict(sorted(totals.items()))
                       for kind_, totals in
                       sorted(telemetry.phase_totals.items())},
            "episodes": dict(sorted(telemetry.phase_episodes.items())),
        },
        "recovery_plans": {
            "plans": telemetry.plans,
            "tracks": telemetry.plan_tracks,
            "serial_us": telemetry.plan_serial_us,
            "planned_us": telemetry.plan_planned_us,
        },
        "spans": spans,
        "timeline": timeline,
        "reboots": {
            "component_reboots": len(kernel.reboots),
            "root_reboots": len(kernel.root_reboots),
            "last": last_reboots,
        },
    }


def emit_postmortem(kernel: Any, kind: str, component: str,
                    reason: str) -> Dict[str, Any]:
    """Build, remember and (optionally) persist one postmortem.

    Stored on ``kernel.last_postmortem`` always; appended to the
    collector's postmortem list when the flight recorder is attached;
    written to ``$REPRO_POSTMORTEM_DIR`` when that is set.
    """
    doc = build_postmortem(kernel, kind, component, reason)
    kernel.last_postmortem = doc
    obs = kernel.sim.obs
    if obs is not None:
        obs.collector.postmortems.append(doc)
    out_dir = os.environ.get(ENV_POSTMORTEM_DIR)
    if out_dir:
        seq = kernel.postmortem_seq
        kernel.postmortem_seq = seq + 1
        name = (f"postmortem-{kind}-{component or 'root'}"
                f"-{seq}-{int(doc['now_us'])}.json")
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
    return doc


def render_postmortem(doc: Dict[str, Any]) -> str:
    """The ``repro postmortem`` text view."""
    lines = [
        f"POSTMORTEM — {doc['kind']} of {doc['component'] or '(root)'} "
        f"at {doc['now_us'] / 1e3:.2f}ms virtual",
        f"  reason: {doc['reason']}",
    ]
    wear = doc.get("wear", {})
    if wear:
        pairs = " ".join(f"{key}={wear[key]}" for key in sorted(wear))
        lines.append(f"  root wear: {pairs}")
    reboots = doc.get("reboots", {})
    lines.append(f"  reboots: {reboots.get('component_reboots', 0)} "
                 f"component, {reboots.get('root_reboots', 0)} root")
    for record in reboots.get("last", ()):
        lines.append(
            f"    {record['component']}: {record['reason']}, "
            f"{record['downtime_us']:.1f}us down, "
            f"{record['entries_replayed']} replayed")
    ladder = doc.get("ladder", {})
    attempts = ladder.get("rung_attempts", {})
    if attempts:
        lines.append("  ladder history:")
        for comp in sorted(attempts):
            rungs = " ".join(f"{rung}:{count}" for rung, count in
                             sorted(attempts[comp].items()))
            lines.append(f"    {comp}: {rungs}")
    recoveries = ladder.get("recent_recoveries", ())
    if recoveries:
        lines.append("  recent recoveries:")
        for outcome in recoveries:
            phases = outcome.get("phases", {})
            detail = " ".join(f"{phase}={phases[phase]:.1f}us"
                              for phase in sorted(phases))
            lines.append(
                f"    {outcome['component']} ({outcome['kind']}) via "
                f"{outcome['rung']}: {outcome['mttr_us']:.1f}us"
                + (f" [{detail}]" if detail else ""))
    phases = doc.get("phases", {})
    episodes = phases.get("episodes", {})
    if episodes:
        lines.append("  phase attribution:")
        for kind in sorted(episodes):
            totals = phases.get("totals", {}).get(kind, {})
            detail = " ".join(f"{phase}={totals[phase]:.1f}us"
                              for phase in sorted(totals))
            lines.append(f"    {kind}: {episodes[kind]} episodes"
                         + (f" [{detail}]" if detail else ""))
    plans = doc.get("recovery_plans", {})
    if plans.get("plans"):
        lines.append(
            f"  recovery plans: {plans['plans']} plans / "
            f"{plans['tracks']} tracks, serial {plans['serial_us']:.1f}us"
            f" -> planned {plans['planned_us']:.1f}us")
    slo = doc.get("slo", {})
    requests = slo.get("requests", {})
    if requests:
        lines.append("  SLO requests (ok/err):")
        for comp in sorted(requests):
            ok, err = requests[comp]
            lines.append(f"    {comp}: {ok}/{err}")
    intervals = slo.get("intervals", {})
    dead = [comp for comp, rows in sorted(intervals.items())
            if any(row[0] == "dead" for row in rows)]
    if dead:
        lines.append(f"  dead at capture: {' '.join(dead)}")
    timeline = doc.get("timeline", {})
    if timeline:
        lines.append("  timeline tail:")
        for key in sorted(timeline):
            points = timeline[key]
            if not points:
                continue
            last_t, last_v = points[-1]
            lines.append(f"    {key}: {len(points)} pts, "
                         f"last {last_v:g} @ {last_t / 1e3:.2f}ms")
    spans = doc.get("spans", ())
    if spans:
        lines.append(f"  last {len(spans)} spans:")
        for span in spans[-12:]:
            end = span.get("end_us")
            duration = (f"{end - span['start_us']:.1f}us"
                        if end is not None else "open")
            lines.append(f"    [{span['cat']}] {span['name']} "
                         f"({duration})")
    return "\n".join(lines)
