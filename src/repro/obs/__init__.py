"""Observability: the flight recorder.

A unified tracing / metrics / profiling layer over the virtual-time
simulation, switched on by ``repro ... --obs`` (or the ``REPRO_OBS``
environment variable).  Three instruments share one collector:

* **causal spans** (:mod:`.spans`, :mod:`.recorder`) — timed intervals
  around requests, dispatches, reboots, restoration replays and
  supervisor ladder rungs, parent-linked across components via span ids
  stamped onto messages; exportable to Chrome trace-event / Perfetto
  JSON (``repro trace export``);
* **metrics** (:mod:`.metrics`) — counters, gauges, log2-bucketed
  virtual-µs histograms, merged across pool shards with the same
  canonical-order fold that keeps reports byte-identical at any
  ``--jobs``;
* **virtual-time profiler** (:mod:`.profiler`) — every cost-model
  charge attributed to the open span stack, emitted as folded stacks
  for flamegraph.pl / speedscope.

The layer is purely observational: with ``--obs`` the reports are
byte-identical to a run without it, and virtual time is only charged
when ``FLAGS.charge_tracing`` is explicitly set.
"""

from .metrics import Gauge, Histogram, MetricsRegistry, bucket_index
from .recorder import FlightRecorder, ObsCollector
from .spans import Span, roots_of, span_children
from . import export, profiler, state, top

__all__ = [
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsCollector",
    "Span",
    "bucket_index",
    "export",
    "profiler",
    "roots_of",
    "span_children",
    "state",
    "top",
]
