"""Observability: the flight recorder.

A unified tracing / metrics / profiling layer over the virtual-time
simulation, switched on by ``repro ... --obs`` (or the ``REPRO_OBS``
environment variable).  Three instruments share one collector:

* **causal spans** (:mod:`.spans`, :mod:`.recorder`) — timed intervals
  around requests, dispatches, reboots, restoration replays and
  supervisor ladder rungs, parent-linked across components via span ids
  stamped onto messages; exportable to Chrome trace-event / Perfetto
  JSON (``repro trace export``);
* **metrics** (:mod:`.metrics`) — counters, gauges, log2-bucketed
  virtual-µs histograms, merged across pool shards with the same
  canonical-order fold that keeps reports byte-identical at any
  ``--jobs``;
* **virtual-time profiler** (:mod:`.profiler`) — every cost-model
  charge attributed to the open span stack, emitted as folded stacks
  for flamegraph.pl / speedscope.

On top of the recorder sits the **reliability observatory**:

* **SLO ledger** (:mod:`.slo`) — per-component availability intervals
  and request/error accounting with error-budget burn rates;
* **health timelines** (:mod:`.timeline`) — heartbeat-sampled,
  compacting time-series of vital signs (leaks, wear, arena occupancy,
  degraded-set size);
* **postmortem artifacts** (:mod:`.postmortem`) — a self-contained,
  schema-validated JSON document frozen at every terminal failure.

The layer is purely observational: with ``--obs`` the reports are
byte-identical to a run without it, and virtual time is only charged
when ``FLAGS.charge_tracing`` is explicitly set.
"""

from .metrics import Gauge, Histogram, MetricsRegistry, bucket_index
from .postmortem import (
    POSTMORTEM_SCHEMA,
    build_postmortem,
    emit_postmortem,
    render_postmortem,
    validate_postmortem,
)
from .recorder import FlightRecorder, ObsCollector
from .slo import DEFAULT_SLO_TARGET, SLO_ROW_HEADERS, SLO_STATES, SloLedger
from .spans import Span, roots_of, span_children
from .timeline import HealthTimeline, TimeSeries
from . import export, profiler, state, top

__all__ = [
    "DEFAULT_SLO_TARGET",
    "FlightRecorder",
    "Gauge",
    "HealthTimeline",
    "Histogram",
    "MetricsRegistry",
    "ObsCollector",
    "POSTMORTEM_SCHEMA",
    "SLO_ROW_HEADERS",
    "SLO_STATES",
    "SloLedger",
    "Span",
    "TimeSeries",
    "bucket_index",
    "build_postmortem",
    "emit_postmortem",
    "export",
    "profiler",
    "render_postmortem",
    "roots_of",
    "span_children",
    "state",
    "top",
    "validate_postmortem",
]
