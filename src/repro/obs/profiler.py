"""Virtual-time profiler output.

``Simulation.charge`` notifies the flight recorder of every cost-model
charge; the recorder attributes it to the stack of open spans plus the
charged mechanism as the leaf frame, accumulating a
``folded-stack -> [virtual µs, charge count]`` profile.  This module
turns that ledger into the two standard downstream formats:

* :func:`folded_lines` — Brendan Gregg folded-stack text, one
  ``frame;frame;... value`` line per stack, directly consumable by
  ``flamegraph.pl`` and speedscope's "folded" importer.  Values are
  integer virtual **nanoseconds** (folded readers want integers;
  nanoseconds keep sub-µs costs like 0.05 µs function calls visible).
* :func:`profile_table` — rows for ``repro top``: per-stack totals with
  share-of-total, sorted heaviest first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def folded_lines(profile: Dict[str, Sequence[float]]) -> List[str]:
    """Render the profile as folded-stack lines (integer virtual ns)."""
    lines = []
    for key in sorted(profile):
        ns = int(round(profile[key][0] * 1000))
        lines.append(f"{key} {ns}")
    return lines


def profile_table(profile: Dict[str, Sequence[float]],
                  limit: int = 0) -> List[Tuple[str, float, int, float]]:
    """``(stack, total_us, charges, share)`` rows, heaviest first.

    Ties break on the stack string so the table is deterministic.
    """
    total = sum(v[0] for v in profile.values()) or 1.0
    rows = [(key, float(value[0]), int(value[1]), float(value[0]) / total)
            for key, value in profile.items()]
    rows.sort(key=lambda row: (-row[1], row[0]))
    if limit > 0:
        rows = rows[:limit]
    return rows


def leaf_totals(profile: Dict[str, Sequence[float]]) -> Dict[str, float]:
    """Virtual µs per leaf frame (the charged cost-model mechanism),
    summed over every stack it appears under."""
    totals: Dict[str, float] = {}
    for key, value in profile.items():
        leaf = key.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0.0) + value[0]
    return totals
