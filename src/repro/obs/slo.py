"""The SLO ledger: who was up, for how long, and who got served.

:class:`SloLedger` keeps two deterministic accounts in virtual time:

* **availability intervals** — per component, a list of
  ``[state, start_us, end_us]`` intervals over the states ``up``,
  ``degraded``, ``quarantined``, ``rebooting`` and ``dead``.  State
  transitions are noted by the runtime (reboots), the supervisor
  (degradation, quarantine) and the fail-stop path; only the ``up``
  state counts as available;
* **request accounting** — per target component and per caller (the
  syscall entry point), counts of requests answered successfully vs
  answered with a served :class:`SyscallError`.  Error budgets and
  burn rates derive from these counts against a configurable SLO
  target.

The ledger is purely observational: recording never touches the RNG or
the virtual clock, so a run with the ledger enabled is bit-identical to
one without.  Timestamps come from :func:`ledger_now_us` — charged
virtual time, not the raw clock — which makes every recorded boundary
invariant to the recovery scheduler's sanctioned clock overlap (fast
paths vs ``reference_mode``).  Ledgers merge in canonical shard order
(counts sum, interval lists concatenate), so chaos-soak columns and
``repro slo`` reports are byte-identical at any ``--jobs`` count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

def ledger_now_us(ledger: Any) -> float:
    """The observatory timebase: cumulative charged virtual time.

    Interval boundaries and phase marks are stamped with the running
    sum of every cost-ledger charge so far (``CostLedger.elapsed_us``)
    instead of the raw clock.  The recovery scheduler overlaps reboot
    tracks by *seeking* the clock, so mid-episode clock values legally
    differ between the fast paths and ``reference_mode`` — but the
    charge *sequence* is byte-for-byte the serial sweep's, so this sum
    is bit-identical at every call site in both modes (and at any
    ``--jobs``).  Every charge path — ``CostLedger.charge``, the
    inlined engine/runtime sites and the compiled crossing tape —
    accumulates it in charge order, one float add each, so reading a
    timestamp is a single attribute load.
    """
    return ledger.elapsed_us


#: every state an availability interval can carry, canonical order
SLO_STATES: Tuple[str, ...] = ("up", "degraded", "quarantined",
                               "rebooting", "dead")

#: the default availability objective used for error budgets
DEFAULT_SLO_TARGET = 0.999


class SloLedger:
    """Per-component availability intervals + request accounting."""

    __slots__ = ("enabled", "label", "intervals", "requests", "callers")

    def __init__(self, enabled: bool = False, label: str = "") -> None:
        self.enabled = enabled
        self.label = label
        #: component -> [[state, start_us, end_us | None], ...]
        self.intervals: Dict[str, List[List[Any]]] = {}
        #: target component -> [ok, err]
        self.requests: Dict[str, List[int]] = {}
        #: caller (syscall entry point) -> [ok, err]
        self.callers: Dict[str, List[int]] = {}

    # --- recording (runtime + supervisor call these) ----------------------

    def seed_up(self, components: List[str], now_us: float) -> None:
        """Open an ``up`` interval for every booted component (and the
        root), so availability has a denominator from boot onward."""
        for name in components:
            self.note_state(name, "up", now_us)
        self.note_state("ROOT", "up", now_us)

    def note_state(self, component: str, state: str,
                   now_us: float) -> None:
        """Close the open interval (if any) and open a new one; a
        repeated state is a no-op, so call sites stay unconditional."""
        if not self.enabled:
            return
        intervals = self.intervals.get(component)
        if intervals is None:
            intervals = self.intervals[component] = []
        if intervals:
            last = intervals[-1]
            if last[2] is None:
                if last[0] == state:
                    return
                last[2] = now_us
        intervals.append([state, now_us, None])

    def note_request(self, component: str, caller: str,
                     ok: bool) -> None:
        index = 0 if ok else 1
        slot = self.requests.get(component)
        if slot is None:
            slot = self.requests[component] = [0, 0]
        slot[index] += 1
        slot = self.callers.get(caller)
        if slot is None:
            slot = self.callers[caller] = [0, 0]
        slot[index] += 1

    def note_requests(self, component: str, caller: str,
                      ok: int = 0, err: int = 0) -> None:
        """Bulk request accounting: fold whole per-tick batches in one
        call.  The fleet balancer answers hundreds of requests per
        (instance, tenant) pair per tick — charging them one
        :meth:`note_request` at a time would dominate the serving
        loop.  Equivalent to ``ok`` + ``err`` individual calls."""
        if ok <= 0 and err <= 0:
            return
        for mapping, key in ((self.requests, component),
                             (self.callers, caller)):
            slot = mapping.get(key)
            if slot is None:
                slot = mapping[key] = [0, 0]
            if ok > 0:
                slot[0] += ok
            if err > 0:
                slot[1] += err

    def close(self, now_us: float) -> None:
        """Close every open interval (harvest time: shard merges must
        only ever see closed intervals)."""
        for intervals in self.intervals.values():
            if intervals and intervals[-1][2] is None:
                intervals[-1][2] = now_us

    # --- queries ----------------------------------------------------------

    def components(self) -> List[str]:
        return sorted(set(self.intervals) | set(self.requests))

    def state_time_us(self, component: str) -> Dict[str, float]:
        """Closed-interval time per state (open intervals excluded —
        call :meth:`close` first when harvesting)."""
        totals = {state: 0.0 for state in SLO_STATES}
        for state, start_us, end_us in self.intervals.get(component, ()):
            if end_us is not None:
                totals[state] = totals.get(state, 0.0) \
                    + (end_us - start_us)
        return totals

    def availability(self, component: str) -> Optional[float]:
        """Up-time over total closed interval time (None without any
        closed interval)."""
        totals = self.state_time_us(component)
        denom = sum(totals[state] for state in SLO_STATES)
        if denom <= 0.0:
            return None
        return totals["up"] / denom

    def request_totals(self) -> Tuple[int, int]:
        ok = sum(slot[0] for slot in self.requests.values())
        err = sum(slot[1] for slot in self.requests.values())
        return ok, err

    def burn_rate(self, target: float = DEFAULT_SLO_TARGET) \
            -> Optional[float]:
        """Served-error consumption of the error budget: 1.0 means the
        budget is exactly spent, above 1.0 the SLO is violated."""
        ok, err = self.request_totals()
        total = ok + err
        if total == 0:
            return None
        budget = (1.0 - target) * total
        if budget <= 0.0:
            return None
        return err / budget

    # --- merging (canonical shard order) ----------------------------------

    def merged_with(self, other: "SloLedger") -> "SloLedger":
        """Fold two ledgers: counts sum, per-component interval lists
        concatenate in argument order (``self`` is the earlier shard in
        canonical order)."""
        out = SloLedger(enabled=self.enabled or other.enabled,
                        label=self.label or other.label)
        for src in (self, other):
            for comp, intervals in src.intervals.items():
                out.intervals.setdefault(comp, []).extend(
                    [list(iv) for iv in intervals])
            for attr in ("requests", "callers"):
                dst_map = getattr(out, attr)
                for key, (ok, err) in getattr(src, attr).items():
                    slot = dst_map.get(key)
                    if slot is None:
                        dst_map[key] = [ok, err]
                    else:
                        slot[0] += ok
                        slot[1] += err
        return out

    # --- serialisation ----------------------------------------------------

    def to_jsonable(self, now_us: Optional[float] = None) \
            -> Dict[str, Any]:
        """A JSON-ready copy; ``now_us`` closes open intervals in the
        copy without mutating the live ledger."""
        intervals: Dict[str, List[List[Any]]] = {}
        for comp in sorted(self.intervals):
            rows = []
            for state, start_us, end_us in self.intervals[comp]:
                if end_us is None and now_us is not None:
                    end_us = now_us
                rows.append([state, start_us, end_us])
            intervals[comp] = rows
        return {
            "label": self.label,
            "intervals": intervals,
            "requests": {k: list(self.requests[k])
                         for k in sorted(self.requests)},
            "callers": {k: list(self.callers[k])
                        for k in sorted(self.callers)},
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "SloLedger":
        out = cls(enabled=True, label=data.get("label", ""))
        out.intervals = {comp: [list(iv) for iv in rows]
                         for comp, rows in
                         data.get("intervals", {}).items()}
        out.requests = {k: list(v)
                        for k, v in data.get("requests", {}).items()}
        out.callers = {k: list(v)
                       for k, v in data.get("callers", {}).items()}
        return out

    @classmethod
    def merged_from_jsonables(cls, blobs: List[Dict[str, Any]]) \
            -> "SloLedger":
        """Fold recorded ledger blobs (recording order is canonical)."""
        out = cls(enabled=True)
        for blob in blobs:
            out = out.merged_with(cls.from_jsonable(blob))
        return out

    # --- rendering --------------------------------------------------------

    def rows(self, target: float = DEFAULT_SLO_TARGET) \
            -> List[List[Any]]:
        """Per-component report rows (see :data:`SLO_ROW_HEADERS`)."""
        rows: List[List[Any]] = []
        for name in self.components():
            availability = self.availability(name)
            times = self.state_time_us(name)
            ok, err = self.requests.get(name, (0, 0))
            total = ok + err
            budget = (1.0 - target) * total
            burn = (f"{err / budget:.2f}x"
                    if total and budget > 0.0 else "-")
            rows.append([
                name,
                f"{availability * 100:.3f}%"
                if availability is not None else "-",
                f"{times['up'] / 1e3:.1f}ms",
                f"{times['degraded'] / 1e3:.1f}ms",
                f"{times['quarantined'] / 1e3:.1f}ms",
                f"{times['rebooting'] / 1e3:.1f}ms",
                f"{times['dead'] / 1e3:.1f}ms",
                f"{ok}/{err}",
                burn,
            ])
        return rows

    def render(self, target: float = DEFAULT_SLO_TARGET) -> str:
        """The ``repro slo`` text view."""
        lines = ["SLO ledger"
                 + (f" — {self.label}" if self.label else "")]
        lines.append(f"  target: {target * 100:.2f}% "
                     f"(error budget {100 - target * 100:.2f}%)")
        ok, err = self.request_totals()
        burn = self.burn_rate(target)
        lines.append(f"  requests: {ok} ok / {err} served errors"
                     + (f" — budget burn {burn:.2f}x"
                        if burn is not None else ""))
        header = ["component", "avail", "up", "degraded", "quarantined",
                  "rebooting", "dead", "ok/err", "burn"]
        table = [header] + [[str(c) for c in row]
                            for row in self.rows(target)]
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(header))]
        for row in table:
            lines.append("  " + "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)))
        per_caller = sorted(self.callers.items())
        if per_caller:
            lines.append("  per caller:")
            for caller, (c_ok, c_err) in per_caller:
                lines.append(f"    {caller}: {c_ok} ok / {c_err} err")
        return "\n".join(lines)


#: column headers matching :meth:`SloLedger.rows`
SLO_ROW_HEADERS = ["component", "availability", "up", "degraded",
                   "quarantined", "rebooting", "dead", "requests ok/err",
                   "budget burn"]
