"""Mergeable metrics: counters, gauges and log-bucketed histograms.

The flight recorder's quantitative half.  Every instrument is designed
around one invariant: a metrics registry folded from per-shard
registries in canonical cell order is **byte-identical** (once
serialised with sorted keys) to the registry a serial run accumulates —
the same contract the parallel engine's report merging already honours.

* :class:`Counter` values and histogram buckets merge by summation
  (commutative + associative, so worker completion order is
  irrelevant);
* :class:`Gauge` carries its last-written value *and* its peak; "last"
  is resolved in canonical shard order, which matches the serial
  execution order by construction;
* :class:`Histogram` buckets virtual-microsecond samples into log2
  bins (bucket ``i`` holds samples in ``[2**i, 2**(i+1))``), so two
  shards' distributions union exactly — no quantile sketch drift.

Nothing here touches the virtual clock or the RNG: recording a sample
is purely observational.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.merge import merge_sums


def bucket_index(value: float) -> int:
    """The log2 bucket a sample lands in (``-1`` holds zeros and
    sub-microsecond values below 1.0)."""
    if value < 1.0:
        return -1
    # floor(log2(value)) via frexp: exact for the powers of two where
    # log2() would wobble on some libm builds.
    mantissa, exponent = math.frexp(value)
    return exponent - 1


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``[low, high)`` range of a bucket index."""
    if index < 0:
        return (0.0, 1.0)
    return (float(2 ** index), float(2 ** (index + 1)))


@dataclass
class Gauge:
    """A last-value instrument with its lifetime peak."""

    value: float = 0.0
    peak: float = 0.0
    sets: int = 0

    def set(self, value: float) -> None:
        self.value = value
        if self.sets == 0 or value > self.peak:
            self.peak = value
        self.sets += 1

    def merged_with(self, other: "Gauge") -> "Gauge":
        """``other`` is the later shard in canonical order: its last
        value wins (when it wrote at all); peaks combine."""
        out = Gauge(value=other.value if other.sets else self.value,
                    peak=max(self.peak, other.peak),
                    sets=self.sets + other.sets)
        return out

    def to_dict(self) -> Dict[str, float]:
        return {"value": self.value, "peak": self.peak, "sets": self.sets}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Gauge":
        return cls(value=float(data["value"]), peak=float(data["peak"]),
                   sets=int(data["sets"]))


@dataclass
class Histogram:
    """Log2-bucketed distribution of virtual-microsecond samples."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket bound)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # The open bucket bound can overshoot the largest value
                # actually seen; max is a tighter (and exact) ceiling.
                return min(bucket_bounds(index)[1], self.max)
        return self.max

    def merged_with(self, other: "Histogram") -> "Histogram":
        if self.count == 0:
            low, high = other.min, other.max
        elif other.count == 0:
            low, high = self.min, self.max
        else:
            low, high = min(self.min, other.min), max(self.max, other.max)
        return Histogram(
            count=self.count + other.count,
            total=self.total + other.total,
            min=low, max=high,
            buckets=merge_sums((self.buckets, other.buckets)))

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        return cls(count=int(data["count"]), total=float(data["total"]),
                   min=float(data["min"]), max=float(data["max"]),
                   buckets={int(k): int(v)
                            for k, v in data["buckets"].items()})


class MetricsRegistry:
    """A named bag of counters, gauges and histograms.

    One registry lives on each process's obs collector; experiment
    shards running in pool workers hand theirs back to the parent,
    which folds them in canonical cell order via :meth:`merge_from`.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # --- recording (the instrumented hot paths call these) ----------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # --- merging ----------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` (the later shard in canonical order) in."""
        self.counters = merge_sums((self.counters, other.counters))
        for name, gauge in other.gauges.items():
            mine = self.gauges.get(name)
            self.gauges[name] = (gauge if mine is None
                                 else mine.merged_with(gauge))
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            self.histograms[name] = (hist if mine is None
                                     else mine.merged_with(hist))

    # --- serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_dict()
                       for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        out = cls()
        out.counters = dict(data.get("counters", {}))
        out.gauges = {k: Gauge.from_dict(v)
                      for k, v in data.get("gauges", {}).items()}
        out.histograms = {k: Histogram.from_dict(v)
                          for k, v in data.get("histograms", {}).items()}
        return out

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)
