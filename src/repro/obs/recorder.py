"""The flight recorder and its per-process collector.

One :class:`FlightRecorder` attaches to each :class:`Simulation`
created while observability is enabled (``repro ... --obs``); it is the
object the instrumented hot paths talk to through a single
``sim.obs is not None`` guard.  All recorders of one process share an
:class:`ObsCollector`, which owns the span log, the mergeable metrics
registry and the virtual-time profile.

Determinism contract (the same one the parallel engine gives reports):

* span ids and track ids are allocated in execution order;
* a pool worker starts every cell with a **fresh** collector
  (:func:`repro.obs.state.begin_cell`) and hands the resulting blob
  back with the cell result;
* the parent absorbs blobs in canonical cell order, renumbering each
  blob's locally-allocated ids by the running totals — which is exactly
  the numbering a serial run would have produced, so the saved
  recording is byte-identical at any ``--jobs`` count.

The recorder is purely observational: it never touches the RNG and
never advances the clock — unless the operator opts into
``FLAGS.charge_tracing``, which prices every span open/close at
``costs.trace_emit`` virtual microseconds (for studying the paper's
"monitoring feeds the recovery loop" overhead argument).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..fastpath import FLAGS
from .metrics import Gauge, Histogram, MetricsRegistry
from .spans import Span, renumber
from .timeline import HealthTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Simulation

#: per-recorder span budget; long soaks beyond it keep counting
#: (``spans_dropped``) but stop storing (deterministic keep-first)
DEFAULT_MAX_SPANS = 250_000

#: 1-in-N sampling of ``dispatch`` spans (the highest-volume category:
#: one per cross-component call).  Deterministic by collector counter —
#: the first of every N dispatches records — so a run stores exactly
#: ``ceil(calls / N)`` dispatch spans at any ``--jobs`` count.  Metrics
#: keep seeing every call exactly; the profile keeps attributing every
#: charge (same counts, same total time), but charges under a
#: sampled-out span fold into its parent's path — the dispatch frame
#: only appears for the sampled representatives.
ENV_SAMPLE_DISPATCH = "REPRO_OBS_SAMPLE_DISPATCH"


def _max_spans() -> int:
    try:
        return int(os.environ.get("REPRO_OBS_MAX_SPANS",
                                  DEFAULT_MAX_SPANS))
    except ValueError:
        return DEFAULT_MAX_SPANS


def _sample_dispatch() -> int:
    try:
        rate = int(os.environ.get(ENV_SAMPLE_DISPATCH, "1"))
    except ValueError:
        return 1
    return rate if rate > 1 else 1


class FlightRecorder:
    """Per-simulation span stack + metrics/profile front-end."""

    __slots__ = ("sim", "collector", "track", "_stack", "_path",
                 "_recorded", "_budget", "_slots")

    def __init__(self, sim: "Simulation", collector: "ObsCollector",
                 track: int) -> None:
        self.sim = sim
        self.collector = collector
        self.track = track
        #: open spans, innermost last; (span, path-before-it) pairs
        self._stack: List[Any] = []
        #: cached ';'-joined span-name path for profile attribution
        self._path = ""
        self._recorded = 0
        self._budget = _max_spans()
        #: (path, category) -> the profile's [us, count] slot; spares
        #: the hot on_charge the string concat and two dict probes.
        #: Valid because absorb() merges into the slot lists in place.
        self._slots: Dict[Any, List[float]] = {}

    # --- spans ------------------------------------------------------------

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1][0].sid if self._stack else None

    def open_span(self, category: str, name: str,
                  parent: Optional[int] = None,
                  **args: Any) -> Optional[Span]:
        """Open a span under ``parent`` (default: the innermost open
        span).  Returns None once the recorder's span budget is spent —
        ``close_span(None)`` is a no-op, so call sites stay branchless.
        """
        if category == "dispatch":
            collector = self.collector
            rate = collector.dispatch_sample
            if rate > 1:
                # Sampled before the budget check: a sampled-out span
                # is neither recorded nor "dropped", and the decision
                # is a pure function of the collector-local counter
                # (cells start at zero, so any --jobs sharding keeps
                # exactly the spans the serial run keeps).
                seen = collector.dispatch_seen
                collector.dispatch_seen = seen + 1
                if seen % rate:
                    return None
        if self._recorded >= self._budget:
            self.collector.spans_dropped += 1
            return None
        if parent is None:
            parent = self.current_span_id()
        span = Span(sid=self.collector.alloc_span_id(), parent=parent,
                    track=self.track, category=category, name=name,
                    start_us=self.sim.clock.now_us, args=args)
        self.collector.spans.append(span)
        self._recorded += 1
        self._stack.append((span, self._path))
        self._path = name if not self._path else self._path + ";" + name
        if FLAGS.charge_tracing:
            self.sim.charge("trace_emit", self.sim.costs.trace_emit)
        return span

    def close_span(self, span: Optional[Span], **args: Any) -> None:
        if span is None:
            return
        # Pop back to this span; tolerates frames a raised exception
        # skipped past (their end time is this close's time).
        while self._stack:
            top, path_before = self._stack.pop()
            self._path = path_before
            if top.end_us is None:
                top.end_us = self.sim.clock.now_us
            if top is span:
                break
        if args:
            span.args.update(args)
        if FLAGS.charge_tracing:
            self.sim.charge("trace_emit", self.sim.costs.trace_emit)

    # --- metrics (thin aliases onto the shared registry) -------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.collector.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.collector.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.collector.metrics.observe(name, value)

    # --- virtual-time profiling -------------------------------------------

    def on_charge(self, category: str, amount_us: float) -> None:
        """Attribute one cost-model charge to the open span stack.

        The folded key is the span-name path plus the mechanism as the
        leaf frame — directly consumable by flamegraph.pl/speedscope.
        """
        path = self._path
        slot = self._slots.get((path, category))
        if slot is None:
            key = (path + ";" + category) if path else category
            profile = self.collector.profile
            slot = profile.get(key)
            if slot is None:
                # 0.0 + x is the same float as x: seeding through the
                # cached slot stays bit-identical to direct assignment
                profile[key] = slot = [0.0, 0]
            self._slots[(path, category)] = slot
        slot[0] += amount_us
        slot[1] += 1

    def sample_health(self, kernel: Any) -> None:
        """One heartbeat-driven health sample into the collector's
        timeline (see :mod:`repro.obs.timeline`).

        Reads vital signs only — root wear, message-arena occupancy,
        the degraded set, per-component allocator leaks and the trace
        ring buffer's eviction count.  No RNG, and charge-free unless
        ``FLAGS.charge_tracing`` prices it like any other emission.
        """
        from ..faults.aging import leak_snapshot

        now = self.sim.clock.now_us
        timeline = self.collector.timeline
        timeline.record("root.wear_bytes", now,
                        kernel.root_wear.leaked_bytes())
        timeline.record("msgdom.used_bytes", now,
                        kernel.message_domain.used_bytes)
        timeline.record("supervisor.degraded", now,
                        len(kernel.supervisor.degraded))
        for name, leaked in leak_snapshot(kernel.image).items():
            timeline.record(f"leak.{name}", now, leaked)
        self.collector.metrics.set_gauge("trace.dropped",
                                         self.sim.trace.dropped)
        if FLAGS.charge_tracing:
            self.sim.charge("trace_emit", self.sim.costs.trace_emit)

    def on_trace_drop(self) -> None:
        """One trace-ring eviction (wired to ``Trace.on_drop``)."""
        self.collector.trace_dropped += 1

    def on_crossing(self, tape, depth: int, used_bytes: int) -> None:
        """Bulk-report one compiled domain crossing (the dispatch fast
        lane's obs hook).

        Equivalent, state-for-state, to what the reference path reports
        for the same crossing: one :meth:`on_charge` per tape item (same
        per-key order and amounts), the ``msgdom.pushes``/``pulls``
        counters, the queue-depth observation and the used-bytes gauge.
        Inlined into one call because the tape charges never open or
        close spans, so the whole crossing attributes under a single
        unchanged path.
        """
        path = self._path
        slots = self._slots
        collector = self.collector
        for cat, amt in tape:
            slot = slots.get((path, cat))
            if slot is None:
                key = (path + ";" + cat) if path else cat
                profile = collector.profile
                slot = profile.get(key)
                if slot is None:
                    slot = profile[key] = [0.0, 0]
                slots[(path, cat)] = slot
            slot[0] += amt
            slot[1] += 1
        metrics = collector.metrics
        counters = metrics.counters
        # Same int-seeded sums as MetricsRegistry.inc(name, 1).
        counters["msgdom.pushes"] = counters.get("msgdom.pushes", 0) + 1
        counters["msgdom.pulls"] = counters.get("msgdom.pulls", 0) + 1
        hist = metrics.histograms.get("msgdom.queue_depth")
        if hist is None:
            hist = metrics.histograms["msgdom.queue_depth"] = Histogram()
        hist.observe(depth)
        gauge = metrics.gauges.get("msgdom.used_bytes")
        if gauge is None:
            gauge = metrics.gauges["msgdom.used_bytes"] = Gauge()
        gauge.set(used_bytes)


class ObsCollector:
    """Per-process accumulator shared by every recorder."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        #: folded stack -> [total virtual us, charge count]
        self.profile: Dict[str, List[float]] = {}
        self.spans: List[Span] = []
        self.spans_dropped = 0
        #: trace-ring evictions across every attached simulation
        self.trace_dropped = 0
        self._next_span = 0
        self._next_track = 0
        #: 1-in-N dispatch-span sampling (see ENV_SAMPLE_DISPATCH)
        self.dispatch_sample = _sample_dispatch()
        self.dispatch_seen = 0
        #: live SLO ledgers registered by kernels in this process/cell
        #: (serialised at snapshot time, in registration order)
        self.slo_ledgers: List[Any] = []
        #: already-serialised ledger blobs absorbed from worker cells
        self.slo_blobs: List[Dict[str, Any]] = []
        #: heartbeat-sampled vital signs (see sample_health)
        self.timeline = HealthTimeline()
        #: postmortem documents, in execution order
        self.postmortems: List[Dict[str, Any]] = []

    # --- allocation -------------------------------------------------------

    def alloc_span_id(self) -> int:
        sid = self._next_span
        self._next_span += 1
        return sid

    def recorder_for(self, sim: "Simulation") -> FlightRecorder:
        track = self._next_track
        self._next_track += 1
        return FlightRecorder(sim, self, track)

    # --- shard plumbing ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A picklable blob of everything recorded so far (what a pool
        worker returns alongside its cell result)."""
        return {
            "spans": list(self.spans),
            "metrics": self.metrics,
            "profile": {k: list(v) for k, v in self.profile.items()},
            "n_spans": self._next_span,
            "n_tracks": self._next_track,
            "spans_dropped": self.spans_dropped,
            "trace_dropped": self.trace_dropped,
            "dispatch_seen": self.dispatch_seen,
            "slo": self.slo_blobs
            + [ledger.to_jsonable() for ledger in self.slo_ledgers],
            "timeline": self.timeline.to_jsonable(),
            "postmortems": list(self.postmortems),
        }

    def absorb(self, blob: Dict[str, Any]) -> None:
        """Fold a worker blob in (canonical cell order!), renumbering
        its locally-allocated span/track ids into this collector's id
        space — the numbering a serial run would have used."""
        self.spans.extend(renumber(blob["spans"], self._next_span,
                                   self._next_track))
        self._next_span += blob["n_spans"]
        self._next_track += blob["n_tracks"]
        self.metrics.merge_from(blob["metrics"])
        # Merged IN PLACE (same key-wise sums as a merge_sums fold, and
        # slot-list identity is preserved): live recorders cache direct
        # references to the [us, count] slots, which must stay valid.
        profile = self.profile
        for key, (us, count) in blob["profile"].items():
            slot = profile.get(key)
            if slot is None:
                profile[key] = [us, count]
            else:
                slot[0] += us
                slot[1] += count
        self.spans_dropped += blob["spans_dropped"]
        self.trace_dropped += blob.get("trace_dropped", 0)
        self.dispatch_seen += blob["dispatch_seen"]
        self.slo_blobs.extend(blob.get("slo", ()))
        self.timeline.absorb(blob.get("timeline", {}))
        self.postmortems.extend(blob.get("postmortems", ()))

    # --- serialisation ----------------------------------------------------

    def to_recording(self) -> Dict[str, Any]:
        """The canonical JSON-ready recording document."""
        return {
            "schema": 1,
            "kind": "repro-flight-recording",
            "spans": [s.to_dict() for s in self.spans],
            "spans_dropped": self.spans_dropped,
            "trace_dropped": self.trace_dropped,
            "metrics": self.metrics.to_dict(),
            "profile": {k: {"us": v[0], "count": v[1]}
                        for k, v in sorted(self.profile.items())},
            "slo": self.slo_blobs
            + [ledger.to_jsonable() for ledger in self.slo_ledgers],
            "timeline": self.timeline.to_jsonable(),
            "postmortems": list(self.postmortems),
        }
