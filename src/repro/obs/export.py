"""Recording (de)serialisation and Chrome trace-event export.

A *recording* is the canonical JSON document produced by
:meth:`ObsCollector.to_recording` — spans, metrics, profile — saved
with sorted keys so byte-identity claims are testable with a plain file
diff.  From a recording this module derives:

* :func:`to_chrome_trace` — the Chrome trace-event JSON that
  ``repro trace export`` writes.  Spans become ``"X"`` (complete)
  events: ``ts``/``dur`` in virtual microseconds, one ``pid`` per
  recorder track (named via ``"M"`` metadata events so Perfetto and
  ``chrome://tracing`` label the lanes), span/parent ids carried in
  ``args`` for the causal tree;
* :func:`to_folded` — the profiler's folded-stack text (see
  :mod:`repro.obs.profiler`);
* :func:`validate_chrome_trace` — the minimal schema check the CI obs
  smoke job runs on exported traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .profiler import folded_lines
from .spans import Span


def save_recording(recording: Dict[str, Any], path: str) -> None:
    """Write a recording with sorted keys (byte-stable across runs)."""
    with open(path, "w") as fh:
        json.dump(recording, fh, sort_keys=True, indent=1)
        fh.write("\n")


def load_recording(path: str) -> Dict[str, Any]:
    """Read a recording back, sanity-checking the document kind."""
    with open(path) as fh:
        recording = json.load(fh)
    if recording.get("kind") != "repro-flight-recording":
        raise ValueError(f"{path} is not a flight recording")
    return recording


def recording_spans(recording: Dict[str, Any]) -> List[Span]:
    """Rehydrate the recording's spans."""
    return [Span.from_dict(d) for d in recording["spans"]]


def _frame_mentions(frame: str, component: str) -> bool:
    """Does one span-name/profile frame belong to ``component``?
    Matches the exact name, the ``COMP.func`` dispatch form and the
    ``verb:COMP`` checkpoint form."""
    return (frame == component
            or frame.startswith(component + ".")
            or frame.endswith(":" + component))


def _span_matches(item: Dict[str, Any], component: Optional[str],
                  category: Optional[str]) -> bool:
    if category is not None and item["cat"] != category:
        return False
    if component is None:
        return True
    if _frame_mentions(item["name"], component):
        return True
    return any(value == component for value in item["args"].values())


def filter_recording(recording: Dict[str, Any],
                     component: Optional[str] = None,
                     category: Optional[str] = None) -> Dict[str, Any]:
    """A filtered copy of a recording for export.

    ``component`` keeps spans that name or reference the component
    (span name, ``COMP.func`` dispatch names, ``verb:COMP`` checkpoint
    names, any ``args`` value) and profile stacks with a matching
    frame; ``category`` keeps spans of that category and profile
    stacks whose mechanism leaf matches.  Parent links onto
    filtered-out spans are cut, so kept subtrees re-root and the
    exported trace still validates.  The original is not mutated.
    """
    if component is None and category is None:
        return recording
    spans = [dict(item) for item in recording["spans"]
             if _span_matches(item, component, category)]
    kept = {item["sid"] for item in spans}
    for item in spans:
        if item["parent"] is not None and item["parent"] not in kept:
            item["parent"] = None
    profile: Dict[str, Any] = {}
    for key, value in recording["profile"].items():
        frames = key.split(";")
        if category is not None and frames[-1] != category:
            continue
        if component is not None and not any(
                _frame_mentions(frame, component) for frame in frames):
            continue
        profile[key] = value
    out = dict(recording)
    out["spans"] = spans
    out["profile"] = profile
    return out


def to_chrome_trace(recording: Dict[str, Any]) -> Dict[str, Any]:
    """Render a recording as a Chrome trace-event document."""
    events: List[Dict[str, Any]] = []
    tracks = set()
    for item in recording["spans"]:
        tracks.add(item["track"])
        args = dict(item["args"])
        args["span_id"] = item["sid"]
        if item["parent"] is not None:
            args["parent"] = item["parent"]
        end_us = item["end_us"]
        events.append({
            "name": item["name"],
            "cat": item["cat"],
            "ph": "X",
            "ts": item["start_us"],
            "dur": (0.0 if end_us is None
                    else end_us - item["start_us"]),
            "pid": item["track"],
            "tid": 0,
            "args": args,
        })
    for track in sorted(tracks):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": track,
            "tid": 0,
            "args": {"name": f"sim-{track}"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro flight recorder",
            "clock": "virtual-us",
            "spans_dropped": recording.get("spans_dropped", 0),
        },
    }


def to_folded(recording: Dict[str, Any]) -> str:
    """Render the recording's profile as folded-stack text."""
    profile = {key: (value["us"], value["count"])
               for key, value in recording["profile"].items()}
    return "\n".join(folded_lines(profile)) + "\n"


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Check a trace document against the minimal Chrome trace-event
    schema; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    ids = set()
    for position, event in enumerate(events):
        where = f"event[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    problems.append(f"{where}: {key!r} not numeric")
            if isinstance(event.get("dur"), (int, float)) \
                    and event["dur"] < 0:
                problems.append(f"{where}: negative dur")
            sid = event.get("args", {}).get("span_id")
            if sid is None:
                problems.append(f"{where}: args.span_id missing")
            elif sid in ids:
                problems.append(f"{where}: duplicate span_id {sid}")
            else:
                ids.add(sid)
        elif phase != "M":
            problems.append(f"{where}: unknown phase {phase!r}")
    for position, event in enumerate(events):
        if isinstance(event, dict) and event.get("ph") == "X":
            parent = event.get("args", {}).get("parent")
            if parent is not None and parent not in ids:
                problems.append(
                    f"event[{position}]: parent {parent} not in trace")
    return problems
