"""Process-global observability switchboard.

The flight recorder must be reachable from deep inside the hot paths
without threading a handle through every constructor, and it must
survive the fork into pool workers.  This module owns that one piece of
process state:

* :func:`enable` / :func:`disable` — flip recording on/off for this
  process *and its future children* (via the ``REPRO_OBS`` environment
  variable, so spawn-based pools see it too);
* :func:`maybe_attach` — called by ``Simulation.__init__``; hands back
  a :class:`FlightRecorder` when recording, else ``None`` (the hot
  paths then guard on ``sim.obs is not None`` only);
* :func:`begin_cell` / :func:`harvest_cell` / :func:`absorb` — the pool
  plumbing: a worker resets its collector before each cell (also
  discarding any fork-inherited parent state), ships the blob back with
  the result, and the parent folds blobs in canonical cell order.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from .recorder import ENV_SAMPLE_DISPATCH, ObsCollector

ENV_FLAG = "REPRO_OBS"

_ENABLED = False
_COLLECTOR: Optional[ObsCollector] = None


def obs_enabled() -> bool:
    """True when this process should record (flag or inherited env)."""
    return _ENABLED or os.environ.get(ENV_FLAG) == "1"


def enable(sample_dispatch: Optional[int] = None) -> None:
    """Turn recording on, starting from an empty collector.

    ``sample_dispatch=N`` stores only 1-in-N ``dispatch`` spans
    (deterministic keep-first by counter; metrics and the profile keep
    seeing every call).  Communicated through the environment so
    spawn-based pool workers sample identically.
    """
    global _ENABLED, _COLLECTOR
    if sample_dispatch is not None and sample_dispatch > 1:
        os.environ[ENV_SAMPLE_DISPATCH] = str(sample_dispatch)
    elif sample_dispatch is not None:
        os.environ.pop(ENV_SAMPLE_DISPATCH, None)
    _ENABLED = True
    _COLLECTOR = ObsCollector()
    os.environ[ENV_FLAG] = "1"


def disable() -> None:
    """Turn recording off and drop everything recorded."""
    global _ENABLED, _COLLECTOR
    _ENABLED = False
    _COLLECTOR = None
    os.environ.pop(ENV_FLAG, None)
    os.environ.pop(ENV_SAMPLE_DISPATCH, None)


def collector() -> ObsCollector:
    """The live collector (created lazily in env-enabled children)."""
    global _COLLECTOR
    if _COLLECTOR is None:
        _COLLECTOR = ObsCollector()
    return _COLLECTOR


def maybe_attach(sim: Any):
    """A recorder for ``sim``, or None when observability is off."""
    if not obs_enabled():
        return None
    return collector().recorder_for(sim)


# --- pool plumbing ---------------------------------------------------------
#
# EVERY parallel_map level — pooled or serial, however deeply nested —
# brackets each cell with begin_cell/harvest_cell and folds the blobs
# into the enclosing collector in canonical cell order.  Bracketing the
# serial path too is what makes recordings *byte*-identical: float
# accumulation groups per-cell-then-fold either way, so the parallel
# fold replays the exact serial additions.  The serial loop stacks via
# suspend_collector/restore_collector, which makes nesting safe (a
# nested map folds into its enclosing cell's collector, exactly like a
# nested map running inside a pool worker does).


def begin_cell() -> None:
    """Start a cell against a fresh collector, so the blob harvested
    afterwards holds exactly that cell's data (and none of the parent's
    fork-inherited state)."""
    global _COLLECTOR
    _COLLECTOR = ObsCollector()


def harvest_cell() -> Dict[str, Any]:
    """Snapshot the cell's blob and reset for the next cell."""
    global _COLLECTOR
    blob = collector().snapshot()
    _COLLECTOR = ObsCollector()
    return blob


def suspend_collector() -> ObsCollector:
    """Detach the live collector so the serial cell loop can bracket
    cells without mixing their data into it; pair with
    :func:`restore_collector`.  Nesting stacks: each serial map level
    saves its enclosing collector in a local."""
    global _COLLECTOR
    saved = collector()
    _COLLECTOR = ObsCollector()
    return saved


def restore_collector(saved: ObsCollector) -> None:
    """Reinstall a collector detached by :func:`suspend_collector`."""
    global _COLLECTOR
    _COLLECTOR = saved


def absorb(blob: Dict[str, Any]) -> None:
    """Fold a cell blob into the live collector (call in canonical
    cell order — ids are renumbered by running totals)."""
    collector().absorb(blob)
