"""Health timelines: compacting time-series of runtime vital signs.

The flight recorder samples a fixed set of health signals from the
heartbeat sweep (component leak bytes, root wear, message-domain
occupancy, degraded-set size — see
:meth:`repro.obs.recorder.FlightRecorder.sample_health`) into one
:class:`HealthTimeline` per collector.  Sampling is deterministic —
heartbeat-driven, no RNG, and charge-free unless ``charge_tracing`` —
so a timeline is a pure function of the workload.

Compaction keeps every series bounded: once a series exceeds its cap
the points are decimated to every second sample (``points[::2]``),
repeatedly until under the cap.  The rule is applied identically when
recording (after each append) and when absorbing a shard blob (after
the concatenation), and both the serial and the parallel engine route
every cell through the same begin-cell/absorb path, so the stored
points are byte-identical at any ``--jobs`` count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: points a series may hold before decimation halves its resolution
DEFAULT_SERIES_CAP = 512


class TimeSeries:
    """One bounded series of ``(t_us, value)`` samples."""

    __slots__ = ("cap", "points")

    def __init__(self, cap: int = DEFAULT_SERIES_CAP) -> None:
        self.cap = cap
        self.points: List[Tuple[float, float]] = []

    def add(self, t_us: float, value: float) -> None:
        self.points.append((t_us, float(value)))
        self._compact()

    def _compact(self) -> None:
        while len(self.points) > self.cap:
            self.points = self.points[::2]

    def absorb(self, points: List[Any]) -> None:
        """Concatenate a shard's points (canonical order), then apply
        the same decimation rule a serial run would have applied."""
        self.points.extend((t, v) for t, v in points)
        self._compact()

    def last(self) -> Tuple[float, float]:
        return self.points[-1] if self.points else (0.0, 0.0)


class HealthTimeline:
    """A keyed bag of :class:`TimeSeries`, one per health signal."""

    def __init__(self) -> None:
        self.series: Dict[str, TimeSeries] = {}
        #: samples recorded before compaction (lifetime, mergeable)
        self.samples = 0

    # --- recording --------------------------------------------------------

    def record(self, key: str, t_us: float, value: float) -> None:
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries()
        series.add(t_us, value)
        self.samples += 1

    # --- shard plumbing ---------------------------------------------------

    def absorb(self, blob: Dict[str, Any]) -> None:
        """Fold a worker blob in (canonical cell order)."""
        for key, points in blob.get("series", {}).items():
            series = self.series.get(key)
            if series is None:
                series = self.series[key] = TimeSeries()
            series.absorb(points)
        self.samples += blob.get("samples", 0)

    # --- serialisation ----------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "samples": self.samples,
            "series": {key: [[t, v] for t, v in
                             self.series[key].points]
                       for key in sorted(self.series)},
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "HealthTimeline":
        out = cls()
        out.samples = int(data.get("samples", 0))
        for key, points in data.get("series", {}).items():
            series = out.series[key] = TimeSeries()
            series.points = [(float(t), float(v)) for t, v in points]
        return out

    # --- queries ----------------------------------------------------------

    def tail(self, n: int = 32) -> Dict[str, List[List[float]]]:
        """The last ``n`` points of every series (postmortem slice)."""
        return {key: [[t, v] for t, v in self.series[key].points[-n:]]
                for key in sorted(self.series)}

    def is_empty(self) -> bool:
        return not self.series

    def render(self) -> str:
        """The ``repro health`` text view: per-series summary plus a
        spark line over the retained points."""
        lines = [f"health timeline — {self.samples} samples, "
                 f"{len(self.series)} series"]
        for key in sorted(self.series):
            points = self.series[key].points
            if not points:
                continue
            values = [v for _, v in points]
            low, high = min(values), max(values)
            lines.append(
                f"  {key}: {len(points)} pts  "
                f"last={values[-1]:g}  min={low:g}  max={high:g}  "
                f"[{_spark(values)}]")
        return "\n".join(lines)


_SPARK_GLYPHS = " .:-=+*#%@"


def _spark(values: List[float], width: int = 24) -> str:
    """A fixed-width ASCII spark line (deterministic, ASCII-only so
    report bytes survive any terminal encoding)."""
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low, high = min(values), max(values)
    if high <= low:
        return "-" * len(values)
    scale = (len(_SPARK_GLYPHS) - 1) / (high - low)
    return "".join(_SPARK_GLYPHS[int((v - low) * scale)]
                   for v in values)
