"""Redis workloads (§VII-C and §VII-E).

* ``RedisSetWorkload`` — the Fig. 7 benchmark: SETs of a 4-byte key and
  3-byte value through the network path (1,000,000 in the paper;
  parameterised here).
* ``RedisProbeWorkload`` — the Fig. 8 scenario: a warm store serving
  GETs while one probe GET per second measures response time across a
  failure/recovery event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..apps.redis import MiniRedis
from ..metrics.timeline import Timeline
from ..net.tcp import ClientSocket, ConnectionRefused, ConnectionReset
from ..sim.engine import Simulation


@dataclass
class RedisLoadResult:
    operations: int
    successes: int
    failures: int
    duration_us: float

    @property
    def throughput_per_s(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.successes / (self.duration_us / 1_000_000.0)


class RedisClient:
    """A line-protocol client with automatic reconnect accounting."""

    def __init__(self, app: MiniRedis) -> None:
        self.app = app
        self.sim: Simulation = app.sim
        self._sock: Optional[ClientSocket] = None
        self.reconnects = 0

    def _socket(self) -> ClientSocket:
        if self._sock is None or not self._sock.is_open:
            self._sock = self.app.network.connect(self.app.PORT)
            self.reconnects += 1
        return self._sock

    def command(self, line: bytes) -> bytes:
        sock = self._socket()
        sock.send(line if line.endswith(b"\n") else line + b"\n")
        self.app.poll()
        return sock.recv()

    def set(self, key: str, value: bytes) -> bool:
        return self.command(b"SET %s %s" % (key.encode(), value)) == b"+OK\n"

    def get(self, key: str) -> Optional[bytes]:
        reply = self.command(b"GET %s" % key.encode())
        if reply == b"$-1\n":
            return None
        if reply.startswith(b"$"):
            return reply[1:-1]
        return None

    def close(self) -> None:
        if self._sock is not None and self._sock.is_open:
            self._sock.close()
        self._sock = None


class RedisSetWorkload:
    """``n`` SETs of 4-byte keys / 3-byte values (Fig. 7)."""

    def __init__(self, app: MiniRedis, operations: int = 1_000_000) -> None:
        self.app = app
        self.operations = operations
        self.client = RedisClient(app)

    def run(self) -> RedisLoadResult:
        sim = self.app.sim
        start = sim.clock.now_us
        successes = failures = 0
        for i in range(self.operations):
            key = f"k{i % 9999:04d}"[:4]
            try:
                if self.client.set(key, b"val"):
                    successes += 1
                else:
                    failures += 1
            except (ConnectionReset, ConnectionRefused):
                failures += 1
        return RedisLoadResult(
            operations=self.operations, successes=successes,
            failures=failures, duration_us=sim.clock.now_us - start)


@dataclass
class MixedLoadResult:
    gets: int
    sets: int
    failures: int
    duration_us: float
    get_latencies_us: List[float] = field(default_factory=list)
    set_latencies_us: List[float] = field(default_factory=list)

    @property
    def operations(self) -> int:
        return self.gets + self.sets

    @property
    def throughput_per_s(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.operations / (self.duration_us / 1e6)


class RedisMixedWorkload:
    """redis-benchmark-style GET/SET mix over a bounded key space."""

    def __init__(self, app: MiniRedis, operations: int = 1000,
                 get_ratio: float = 0.9, key_space: int = 1000,
                 value_bytes: int = 16) -> None:
        if not 0.0 <= get_ratio <= 1.0:
            raise ValueError("get_ratio must be in [0, 1]")
        self.app = app
        self.operations = operations
        self.get_ratio = get_ratio
        self.key_space = key_space
        self.value = b"v" * value_bytes
        self.client = RedisClient(app)

    def run(self) -> MixedLoadResult:
        sim = self.app.sim
        rng = sim.rng.stream("redis-mixed")
        result = MixedLoadResult(gets=0, sets=0, failures=0,
                                 duration_us=0.0)
        start = sim.clock.now_us
        for _ in range(self.operations):
            key = f"mix:{rng.randrange(self.key_space):06d}"
            t0 = sim.clock.now_us
            try:
                if rng.random() < self.get_ratio:
                    self.client.get(key)
                    result.gets += 1
                    result.get_latencies_us.append(
                        sim.clock.now_us - t0)
                else:
                    self.client.set(key, self.value)
                    result.sets += 1
                    result.set_latencies_us.append(
                        sim.clock.now_us - t0)
            except (ConnectionReset, ConnectionRefused):
                result.failures += 1
        result.duration_us = sim.clock.now_us - start
        return result


def warm_up(app: MiniRedis, keys: int, value_bytes: int = 1024,
            durable: bool = True) -> None:
    """Fill the store host-side (the paper's 1,000,000-key warm Redis).

    Uses the direct API: warming through the network path would charge
    hours of virtual time before the experiment starts.
    """
    value = b"v" * value_bytes
    for i in range(keys):
        app.set_direct(f"key:{i:07d}", value, durable=durable)


@dataclass
class ProbeResult:
    timeline: Timeline
    failures: int
    max_latency_us: float
    baseline_latency_us: float


class RedisProbeWorkload:
    """GET probes at a fixed virtual rate, measuring response time.

    ``disturb`` (if given) is called once when the virtual clock passes
    ``disturb_at_us`` — the Fig. 8 fault injection hook.
    """

    def __init__(self, app: MiniRedis, keys: int,
                 probe_interval_us: float = 1_000_000.0,
                 background_gets_per_probe: int = 10,
                 client_timeout_us: float = 100_000.0) -> None:
        self.app = app
        self.keys = keys
        self.probe_interval_us = probe_interval_us
        self.background_gets_per_probe = background_gets_per_probe
        #: a service stall shorter than this is absorbed as latency;
        #: beyond it, in-flight requests time out and fail
        self.client_timeout_us = client_timeout_us
        self.client = RedisClient(app)
        self._bg_client = RedisClient(app)

    def run(self, duration_us: float,
            disturb_at_us: Optional[float] = None,
            disturb: Optional[Callable[[], None]] = None) -> ProbeResult:
        sim = self.app.sim
        rng = sim.rng.stream("redis-probe")
        timeline = Timeline("redis-get-latency")
        failures = 0
        disturbed = disturb is None
        start = sim.clock.now_us
        deadline = start + duration_us
        baseline: List[float] = []
        while sim.clock.now_us < deadline:
            tick_end = sim.clock.now_us + self.probe_interval_us
            if not disturbed and disturb_at_us is not None \
                    and sim.clock.now_us - start >= disturb_at_us:
                disturbed = True
                outage_t0 = sim.clock.now_us
                disturb()
                outage = sim.clock.now_us - outage_t0
                # Requests arriving during a synchronous outage (the
                # full-reboot recovery) fail; the request rate is the
                # background GETs plus the probe per interval.  The
                # timeline records the outage as the latency spike of
                # Fig. 8 (one point per missed probe interval, at least
                # one when any outage occurred).
                if outage > self.client_timeout_us:
                    rate = self.background_gets_per_probe + 1
                    failures += max(
                        1, int(outage / self.probe_interval_us * rate))
                    missed = max(1,
                                 int(outage // self.probe_interval_us))
                    for i in range(missed):
                        timeline.record(
                            sim.clock.now_us,
                            outage - i * self.probe_interval_us)
            # Background traffic ("1,000 GET requests ... per second").
            for _ in range(self.background_gets_per_probe):
                key = f"key:{rng.randrange(self.keys):07d}"
                try:
                    self._bg_client.get(key)
                except (ConnectionReset, ConnectionRefused):
                    failures += 1
            # The probe.
            key = f"key:{rng.randrange(self.keys):07d}"
            t0 = sim.clock.now_us
            try:
                value = self.client.get(key)
                latency = sim.clock.now_us - t0
                if value is None:
                    failures += 1
                timeline.record(sim.clock.now_us, latency)
                if disturb_at_us is None or \
                        sim.clock.now_us - start < disturb_at_us:
                    baseline.append(latency)
            except (ConnectionReset, ConnectionRefused):
                failures += 1
                timeline.record(sim.clock.now_us,
                                sim.clock.now_us - t0)
            sim.clock.advance_to(tick_end)
        max_latency = max((p.value for p in timeline.points()),
                          default=0.0)
        baseline_latency = (sum(baseline) / len(baseline)) if baseline \
            else 0.0
        return ProbeResult(timeline=timeline, failures=failures,
                           max_latency_us=max_latency,
                           baseline_latency_us=baseline_latency)
