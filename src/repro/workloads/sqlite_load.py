"""SQLite insert workload (§VII-C).

The paper's SQLite configuration performs 10,000 inserts of a 1-byte
data item through the query API.  The driver measures virtual execution
time and derived throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.sqlite import MiniSQLite
from ..sim.engine import Simulation


@dataclass
class SqliteLoadResult:
    inserts: int
    duration_us: float

    @property
    def throughput_per_s(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.inserts / (self.duration_us / 1_000_000.0)


class SqliteInsertWorkload:
    """``n`` single-row inserts of a 1-byte item."""

    TABLE = "bench"

    def __init__(self, app: MiniSQLite, inserts: int = 10_000) -> None:
        if inserts < 1:
            raise ValueError("need at least one insert")
        self.app = app
        self.inserts = inserts

    def prepare(self) -> None:
        if self.TABLE not in self.app.tables():
            self.app.execute(f"CREATE TABLE {self.TABLE} (id, item)")

    def run(self) -> SqliteLoadResult:
        self.prepare()
        sim: Simulation = self.app.sim
        start = sim.clock.now_us
        for i in range(self.inserts):
            self.app.execute(
                f"INSERT INTO {self.TABLE} VALUES ({i}, 'x')")
        return SqliteLoadResult(
            inserts=self.inserts,
            duration_us=sim.clock.now_us - start)
