"""Echo workload (§VII-C).

The paper sends a 159-byte message for a minute; clients close their
connections after each exchange (which is why Echo's logs never grow —
the canceling functions fire constantly).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.echo import EchoServer
from ..net.tcp import ConnectionRefused, ConnectionReset
from ..sim.engine import Simulation


@dataclass
class EchoLoadResult:
    exchanges: int
    successes: int
    failures: int
    duration_us: float

    @property
    def throughput_per_s(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.successes / (self.duration_us / 1_000_000.0)


class EchoWorkload:
    """connect → send → recv → close, repeated."""

    def __init__(self, app: EchoServer, message_bytes: int = 159) -> None:
        self.app = app
        self.message = b"e" * (message_bytes - 1) + b"\n"

    def one_exchange(self) -> bool:
        sock = self.app.network.connect(self.app.PORT)
        try:
            sock.send(self.message)
            self.app.poll()
            reply = sock.recv()
            return reply == self.message
        except (ConnectionReset, ConnectionRefused):
            return False
        finally:
            if sock.is_open:
                sock.close()

    def run_for(self, duration_us: float) -> EchoLoadResult:
        sim: Simulation = self.app.sim
        start = sim.clock.now_us
        deadline = start + duration_us
        exchanges = successes = 0
        while sim.clock.now_us < deadline:
            exchanges += 1
            if self.one_exchange():
                successes += 1
        return EchoLoadResult(
            exchanges=exchanges, successes=successes,
            failures=exchanges - successes,
            duration_us=sim.clock.now_us - start)

    def run_exchanges(self, count: int) -> EchoLoadResult:
        sim: Simulation = self.app.sim
        start = sim.clock.now_us
        successes = sum(1 for _ in range(count) if self.one_exchange())
        return EchoLoadResult(
            exchanges=count, successes=successes,
            failures=count - successes,
            duration_us=sim.clock.now_us - start)
