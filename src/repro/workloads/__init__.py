"""Workload generators matching §VII's configurations."""

from .echo_load import EchoLoadResult, EchoWorkload
from .http_load import HttpLoadGenerator, HttpLoadResult
from .redis_load import (
    MixedLoadResult,
    ProbeResult,
    RedisMixedWorkload,
    RedisClient,
    RedisLoadResult,
    RedisProbeWorkload,
    RedisSetWorkload,
    warm_up,
)
from .siege import Siege, SiegeResult
from .sqlite_load import SqliteInsertWorkload, SqliteLoadResult

__all__ = [
    "EchoLoadResult",
    "EchoWorkload",
    "HttpLoadGenerator",
    "HttpLoadResult",
    "MixedLoadResult",
    "ProbeResult",
    "RedisMixedWorkload",
    "RedisClient",
    "RedisLoadResult",
    "RedisProbeWorkload",
    "RedisSetWorkload",
    "warm_up",
    "Siege",
    "SiegeResult",
    "SqliteInsertWorkload",
    "SqliteLoadResult",
]
