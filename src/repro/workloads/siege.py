"""Siege analogue: the Table V rejuvenation scenario (§VII-D).

The paper runs the siege benchmark — 100 threads, each sending GET
requests — against Nginx while rejuvenating components, and counts
transaction successes and failures:

* **VampOS**: each component rebooted one by one (every 30 s in the
  paper); connections survive because only one component restarts and
  its state is restored — 100 % success.
* **Unikraft**: the rejuvenation is a full reboot; every established
  connection is reset and in-flight transactions fail — 74.9 % success.

The driver interleaves request rounds with a rejuvenation schedule on
virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..apps.nginx import MiniNginx
from ..net.tcp import ClientSocket, ConnectionRefused, ConnectionReset
from ..sim.engine import Simulation

REQUEST = b"GET /index.html HTTP/1.1\r\nHost: siege\r\n\r\n"


@dataclass
class SiegeResult:
    successes: int = 0
    failures: int = 0
    rejuvenations: int = 0

    @property
    def transactions(self) -> int:
        return self.successes + self.failures

    @property
    def success_ratio(self) -> float:
        total = self.transactions
        return 1.0 if total == 0 else self.successes / total


class Siege:
    """100 concurrent GET clients with a rejuvenation schedule."""

    def __init__(self, app: MiniNginx, clients: int = 100) -> None:
        if clients < 1:
            raise ValueError("need at least one client")
        self.app = app
        self.clients = clients
        self.sim: Simulation = app.sim
        self._sockets: List[Optional[ClientSocket]] = [None] * clients

    def _socket(self, index: int) -> ClientSocket:
        sock = self._sockets[index]
        if sock is None or not sock.is_open:
            sock = self.app.network.connect(self.app.PORT)
            self._sockets[index] = sock
        return sock

    def _send(self, index: int) -> bool:
        try:
            self._socket(index).send(REQUEST)
            return True
        except (ConnectionReset, ConnectionRefused):
            self._sockets[index] = None
            return False

    def _receive(self, index: int) -> bool:
        sock = self._sockets[index]
        if sock is None:
            return False
        try:
            return sock.recv().startswith(b"HTTP/1.1 200")
        except (ConnectionReset, ConnectionRefused):
            self._sockets[index] = None
            return False

    def run(self, rounds: int,
            rejuvenate_every_rounds: int,
            rejuvenate: Callable[[int], None]) -> SiegeResult:
        """``rounds`` rounds of one GET per client.

        Every ``rejuvenate_every_rounds`` rounds, ``rejuvenate(k)``
        fires while the round's requests are *in flight* (sent but not
        yet served) — exactly the situation siege's concurrent threads
        put the paper's prototype in.  A full reboot resets those
        transactions; a VampOS component reboot preserves them because
        the restored component picks the buffered bytes back up.
        """
        result = SiegeResult()
        rejuvenation_counter = 0
        for round_no in range(rounds):
            in_flight = [index for index in range(self.clients)
                         if self._send(index)]
            failed_sends = self.clients - len(in_flight)
            if rejuvenate_every_rounds and \
                    round_no % rejuvenate_every_rounds == \
                    rejuvenate_every_rounds - 1:
                rejuvenate(rejuvenation_counter)
                rejuvenation_counter += 1
                result.rejuvenations += 1
            # Pump the server until it has drained every pending
            # accept and request (a real event loop keeps spinning).
            while self.app.poll(max_accepts=self.clients) > 0:
                pass
            result.failures += failed_sends
            for index in in_flight:
                if self._receive(index):
                    result.successes += 1
                else:
                    result.failures += 1
        return result
