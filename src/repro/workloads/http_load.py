"""HTTP load generator (§VII-C Nginx workload).

The paper requests a 180-byte html file for a minute via 40 persistent
connections.  The driver opens ``connections`` keep-alive connections
and issues GETs round-robin until the virtual deadline, measuring
per-request latency and counting failures (resets / bad responses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..apps.nginx import MiniNginx
from ..metrics.timeline import Timeline
from ..net.tcp import ClientSocket, ConnectionRefused, ConnectionReset
from ..sim.engine import Simulation


@dataclass
class HttpLoadResult:
    requests: int
    successes: int
    failures: int
    duration_us: float
    latencies_us: List[float] = field(default_factory=list)
    latency_timeline: Timeline = field(default_factory=Timeline)

    @property
    def throughput_per_s(self) -> float:
        if self.duration_us == 0:
            return 0.0
        return self.successes / (self.duration_us / 1_000_000.0)

    @property
    def success_ratio(self) -> float:
        if self.requests == 0:
            return 1.0
        return self.successes / self.requests


class HttpLoadGenerator:
    """Keep-alive GET driver against a MiniNginx instance."""

    REQUEST = b"GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n"

    def __init__(self, app: MiniNginx, connections: int = 40) -> None:
        if connections < 1:
            raise ValueError("need at least one connection")
        self.app = app
        self.connections = connections
        self.sim: Simulation = app.sim
        self._sockets: List[Optional[ClientSocket]] = [None] * connections

    def _socket(self, index: int) -> ClientSocket:
        sock = self._sockets[index]
        if sock is None or not sock.is_open:
            sock = self.app.network.connect(self.app.PORT)
            self._sockets[index] = sock
        return sock

    def one_request(self, index: int = 0) -> float:
        """One GET on connection ``index``; returns latency in us.

        Raises ConnectionReset when the server side died mid-request.
        """
        sock = self._socket(index)
        start = self.sim.clock.now_us
        sock.send(self.REQUEST)
        self.app.poll()
        response = sock.recv()
        if not response.startswith(b"HTTP/1.1 200"):
            raise ConnectionReset(sock.conn_id,
                                  f"bad response: {response[:30]!r}")
        return self.sim.clock.now_us - start

    def run_for(self, duration_us: float,
                between_requests_us: float = 0.0) -> HttpLoadResult:
        """Issue GETs round-robin until the virtual deadline."""
        result = HttpLoadResult(requests=0, successes=0, failures=0,
                                duration_us=0.0)
        start = self.sim.clock.now_us
        deadline = start + duration_us
        index = 0
        while self.sim.clock.now_us < deadline:
            result.requests += 1
            try:
                latency = self.one_request(index % self.connections)
                result.successes += 1
                result.latencies_us.append(latency)
                result.latency_timeline.record(self.sim.clock.now_us,
                                               latency)
            except (ConnectionReset, ConnectionRefused):
                result.failures += 1
                self._sockets[index % self.connections] = None
            index += 1
            if between_requests_us:
                self.sim.clock.advance(between_requests_us)
        result.duration_us = self.sim.clock.now_us - start
        return result

    def run_requests(self, count: int) -> HttpLoadResult:
        """Issue exactly ``count`` GETs round-robin."""
        result = HttpLoadResult(requests=0, successes=0, failures=0,
                                duration_us=0.0)
        start = self.sim.clock.now_us
        for index in range(count):
            result.requests += 1
            try:
                latency = self.one_request(index % self.connections)
                result.successes += 1
                result.latencies_us.append(latency)
            except (ConnectionReset, ConnectionRefused):
                result.failures += 1
                self._sockets[index % self.connections] = None
        result.duration_us = self.sim.clock.now_us - start
        return result

    def close_all(self) -> None:
        for sock in self._sockets:
            if sock is not None and sock.is_open:
                sock.close()
        self._sockets = [None] * self.connections
