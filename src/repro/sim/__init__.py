"""Deterministic simulation substrate: virtual time, costs, RNG, trace."""

from .clock import (
    ClockError,
    Stopwatch,
    Timer,
    VirtualClock,
    format_us,
    us_from_ms,
    us_from_s,
)
from .costs import DEFAULT_COSTS, CostLedger, CostModel
from .engine import EventHandle, Simulation
from .rng import DeterministicRNG
from .trace import NULL_TRACE, Trace, TraceEvent

__all__ = [
    "ClockError",
    "Stopwatch",
    "Timer",
    "VirtualClock",
    "format_us",
    "us_from_ms",
    "us_from_s",
    "DEFAULT_COSTS",
    "CostLedger",
    "CostModel",
    "EventHandle",
    "Simulation",
    "DeterministicRNG",
    "NULL_TRACE",
    "Trace",
    "TraceEvent",
]
