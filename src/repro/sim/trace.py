"""Structured event trace.

Mechanisms emit :class:`TraceEvent` records (message pushes, dispatches,
reboots, faults, request completions).  Tests assert on the trace to
verify behaviour ("the VFS thread was dispatched before 9PFS", "no
message crossed a rebooting component"), and the experiment harness
derives time series from it (Fig. 8's latency timeline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence at a point in virtual time."""

    t_us: float
    category: str
    name: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def matches(self, category: Optional[str] = None,
                name: Optional[str] = None, **detail: Any) -> bool:
        if category is not None and self.category != category:
            return False
        if name is not None and self.name != name:
            return False
        for key, value in detail.items():
            if self.detail.get(key) != value:
                return False
        return True


class Trace:
    """An append-only event log with query helpers.

    Tracing is cheap but not free in Python, so a trace can be disabled
    wholesale (``enabled=False``) for throughput-oriented benchmarks, or
    restricted to a category allow-list.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[List[str]] = None,
                 max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self._categories = set(categories) if categories else None
        # A bounded trace is a ring buffer: deque(maxlen) evicts the
        # oldest event in O(1) per append, where the old list-slice
        # eviction cost O(max_events) every half-window.
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._max_events = max_events
        #: events evicted by the ring buffer (recorded-then-dropped;
        #: filtered/disabled emits are not counted)
        self.dropped = 0
        #: optional eviction hook — the flight recorder counts ring
        #: drops into the recording through it
        self.on_drop: Optional[Callable[[], None]] = None
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def wants(self, category: str) -> bool:
        """Whether an event of ``category`` would be recorded — lets hot
        call sites skip building the detail dict entirely."""
        if not self.enabled:
            return False
        return self._categories is None or category in self._categories

    def emit(self, t_us: float, category: str, name: str,
             **detail: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        event = TraceEvent(t_us=t_us, category=category, name=name,
                           detail=detail)
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop()
        events.append(event)
        if self._subscribers:
            # Iterate a snapshot: a subscriber may unsubscribe itself
            # (or others) while handling the event.
            for subscriber in tuple(self._subscribers):
                subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Call ``callback`` for every future event (even when filtered out
        events are dropped, subscribers only see recorded events)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Stop delivering events to ``callback``; a no-op when it is
        not (or no longer) subscribed.  Safe to call from within the
        callback itself."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # --- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(self, category: Optional[str] = None,
               name: Optional[str] = None, **detail: Any) -> List[TraceEvent]:
        return [e for e in self._events
                if e.matches(category=category, name=name, **detail)]

    def count(self, category: Optional[str] = None,
              name: Optional[str] = None, **detail: Any) -> int:
        return len(self.select(category=category, name=name, **detail))

    def first(self, category: Optional[str] = None,
              name: Optional[str] = None, **detail: Any) -> Optional[TraceEvent]:
        for e in self._events:
            if e.matches(category=category, name=name, **detail):
                return e
        return None

    def last(self, category: Optional[str] = None,
             name: Optional[str] = None, **detail: Any) -> Optional[TraceEvent]:
        for e in reversed(self._events):
            if e.matches(category=category, name=name, **detail):
                return e
        return None

    def between(self, start_us: float, end_us: float) -> List[TraceEvent]:
        return [e for e in self._events if start_us <= e.t_us <= end_us]

    def clear(self) -> None:
        self._events.clear()


#: A trace that records nothing; handy default for hot paths.
NULL_TRACE = Trace(enabled=False)
