"""Deterministic randomness for the simulation.

All stochastic behaviour — workload key choices, fault-injection timing,
aging leak sites — draws from named streams derived from a single seed,
so that two runs with the same seed are bit-identical regardless of the
order in which subsystems are constructed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A master seed fanned out into independent named streams.

    ``stream("faults")`` always yields the same :class:`random.Random`
    sequence for a given master seed, independent of any draws taken
    from other streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The named sub-stream, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "DeterministicRNG":
        """A child RNG whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "big"))

    # Convenience draws on an implicit "default" stream -------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self.stream("default").uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self.stream("default").randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self.stream("default").choice(seq)

    def expovariate(self, rate: float) -> float:
        return self.stream("default").expovariate(rate)
