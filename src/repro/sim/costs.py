"""Cost model: virtual-microsecond prices for every mechanism.

The paper's evaluation ran on a 12-core Xeon Silver under QEMU; we have
no CPU to measure, so every mechanism charges a fixed (configurable)
unit cost to the virtual clock.  The defaults below are calibrated so
that the *shapes* reported in the paper hold:

* Fig. 5 — message passing + scheduling overhead grows with the number
  of component transitions per system call; dependency-aware scheduling
  removes most wasted round-robin polls; merging removes hops between
  the merged components.
* Fig. 6 — snapshot restoration dominates stateful component reboots
  (tens of ms for MB-scale snapshots) while stateless reboots are
  microsecond-scale; log replay is hundred-microsecond-scale.
* Fig. 7 — Redis with synchronous AOF pays per-fsync storage latency
  large enough that VampOS's mechanism overhead is the cheaper price.

All costs are in virtual microseconds unless the name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict


@dataclass
class CostModel:
    """Unit costs charged by the substrate and the VampOS runtime."""

    # --- baseline function execution -------------------------------------
    #: a plain intra-image function call (vanilla Unikraft dispatch)
    function_call: float = 0.05
    #: base cost of executing one component-interface function body
    function_body: float = 0.40

    # --- message passing (VampOS §V-A) -----------------------------------
    #: pushing a request or a return value into a message domain
    msg_push: float = 0.30
    #: pulling a message out of a message domain
    msg_pull: float = 0.20

    # --- thread scheduling (VampOS §V-C) ----------------------------------
    #: dispatching a component thread (context switch)
    thread_switch: float = 0.45
    #: one wasted poll when round-robin dispatches a component with no
    #: pending message before reaching the right one
    wasted_poll: float = 0.30
    #: consulting the dependency graph under dependency-aware scheduling
    dependency_lookup: float = 0.08
    #: spawning a fresh thread when the bound one is blocked (§V-A)
    thread_spawn: float = 2.5

    # --- logging for encapsulated restoration (§V-B) ----------------------
    #: appending one entry to the function-call log
    log_append: float = 0.20
    #: appending one return value to the return-value log
    retval_append: float = 0.15
    #: dropping entries during session-aware log shrinking, per entry
    log_prune: float = 0.05
    #: one forced state-extraction shrink pass (threshold exceeded,
    #: §V-F): the prototype "restores the current states of the
    #: components affected by the function invocation after calling the
    #: canceling function intentionally", which touches storage
    forced_shrink: float = 150.0

    # --- protection domains (§V-D) ----------------------------------------
    #: writing the PKRU register on a protection-domain switch
    pkru_write: float = 0.03
    #: one software MPK access check
    mpk_check: float = 0.0
    #: one heart-beat sweep over the component states (§V-A)
    heartbeat_scan: float = 0.5

    # --- reboot machinery (§V-E) ------------------------------------------
    #: fixed cost of tearing down a failed component thread
    reboot_teardown: float = 2.0
    #: restoring a snapshot, per byte of component memory image
    #: (QEMU snapshot loads: ~60 ns/KiB-equivalent, so the paper's
    #: hundreds-of-KB images land in the tens of milliseconds)
    snapshot_restore_per_byte: float = 0.00006
    #: fixed snapshot-restore setup cost (QEMU snapshot machinery)
    snapshot_restore_fixed: float = 350.0
    #: taking a post-boot checkpoint, per byte
    snapshot_take_per_byte: float = 0.000015
    #: replaying one logged call during encapsulated restoration
    replay_call: float = 0.90
    #: reinitialising a stateless component (no snapshot, no replay)
    stateless_reinit: float = 4.0
    #: reattaching a fresh thread after restoration
    thread_reattach: float = 1.5
    #: full reboot of the whole unikernel-linked application (boot path)
    full_reboot_fixed: float = 900_000.0
    #: full reboot: per byte of application state lost and re-read
    full_reboot_restore_per_byte: float = 0.05

    # --- recovery supervision (escalation ladder) --------------------------
    #: supervisor bookkeeping per handled failure (storm window scan,
    #: budget lookup)
    supervisor_scan: float = 0.30
    #: attempting the replay-retry rung (reboot + replay + one retry)
    rung_replay_retry: float = 0.50
    #: attempting the fresh-restart rung (checkpoint restore, no replay)
    rung_fresh_restart: float = 0.80
    #: attempting the variant-swap rung (§VIII multi-version)
    rung_variant_swap: float = 1.00
    #: attempting one dependency-scoped widening ring
    rung_scope_widen: float = 1.60
    #: attempting the rejuvenate-all rung (microreboot-style sweep)
    rung_rejuvenate_all: float = 2.40
    #: entering degraded mode (installing the error-return stub)
    rung_degrade: float = 0.60
    #: answering one interface call from a degraded component with an
    #: ENODEV-style error instead of dispatching it
    degraded_call: float = 0.25

    # --- root rejuvenation (ReHype-style kernel microreboot) ---------------
    #: serializing the kernel-side state (run queue, message slots,
    #: supervisor policy) into a RootCheckpoint before the teardown
    root_checkpoint: float = 40.0
    #: fixed cost of tearing the kernel internals down and bringing the
    #: fresh root up — far below ``full_reboot_fixed`` because component
    #: memory, logs and snapshots are never touched
    root_reboot_fixed: float = 1_200.0
    #: re-attaching one live component to the fresh root (registry +
    #: domain re-tag + thread rebind), per component
    root_reattach_per_component: float = 6.0
    #: attempting the rejuvenate-root rung (above rejuvenate-all)
    rung_rejuvenate_root: float = 3.20

    # --- observability ------------------------------------------------------
    #: opening or closing one flight-recorder span, charged ONLY when
    #: ``FLAGS.charge_tracing`` is set (the recorder is free by default;
    #: this prices the paper's "monitoring inside the recovery loop"
    #: variant for overhead studies)
    trace_emit: float = 0.02

    # --- devices / IO -------------------------------------------------------
    #: 9P round trip to the host share (per operation)
    ninep_rpc: float = 30.0
    #: 9P payload transfer, per byte
    ninep_per_byte: float = 0.004
    #: one synchronous storage flush (AOF fsync path)
    storage_fsync: float = 1_050.0
    #: virtio ring doorbell / kick
    virtio_kick: float = 1.2
    #: network link latency, one direction (same-host in the paper)
    net_latency: float = 40.0
    #: network payload transfer, per byte
    net_per_byte: float = 0.008

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every unit cost multiplied by ``factor``."""
        updates: Dict[str, float] = {
            f.name: getattr(self, f.name) * factor for f in fields(self)
        }
        return CostModel(**updates)

    def with_overrides(self, **overrides: float) -> "CostModel":
        """A copy with individual costs replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: default cost model used across experiments
DEFAULT_COSTS = CostModel()


@dataclass
class CostLedger:
    """Breaks virtual time down by mechanism for reporting.

    The ledger is optional: the runtime charges the clock directly, and
    additionally records per-category totals here when attached.  The
    benchmark harness uses ledgers to show where the overhead of each
    VampOS configuration goes (scheduling vs messaging vs logging).
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    #: running sum of every charge, in charge order — the observatory
    #: timebase (see :func:`repro.obs.slo.ledger_now_us`); kept inline
    #: so timestamping a phase mark is one attribute read
    elapsed_us: float = 0.0

    def charge(self, category: str, amount_us: float) -> None:
        # In-place increments (one dict op each on the hit path); the
        # first charge of a category seeds both maps.  ``0.0 + x`` is
        # ``x`` for every charge the engine can issue, so the totals
        # stay bit-identical to the get-then-add form.
        self.elapsed_us += amount_us
        try:
            self.totals[category] += amount_us
        except KeyError:
            self.totals[category] = 0.0 + amount_us
            self.counts[category] = 1
            return
        self.counts[category] += 1

    def total_us(self) -> float:
        return sum(self.totals.values())

    def breakdown(self) -> Dict[str, float]:
        """Per-category share of the total, sorted descending."""
        total = self.total_us()
        if total == 0:
            return {}
        items = sorted(self.totals.items(), key=lambda kv: kv[1], reverse=True)
        return {name: amount / total for name, amount in items}

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        out = CostLedger()
        out.elapsed_us = self.elapsed_us + other.elapsed_us
        for src in (self, other):
            for name, amount in src.totals.items():
                out.totals[name] = out.totals.get(name, 0.0) + amount
            for name, count in src.counts.items():
                out.counts[name] = out.counts.get(name, 0) + count
        return out

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()
        self.elapsed_us = 0.0
