"""Virtual time for the simulation.

Every mechanism in the reproduction charges *virtual microseconds* to a
shared :class:`VirtualClock` instead of consuming wall-clock time.  This
keeps every experiment deterministic and lets the benchmark harness
reason about downtime, latency and throughput without a real CPU or a
real network.

The clock only moves forward.  Components, the VampOS runtime, and the
workload generators all share one clock owned by the simulation
:class:`~repro.sim.engine.Simulation` (or created standalone in tests).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


class ClockError(Exception):
    """Raised on invalid clock operations (e.g. moving time backwards)."""


class VirtualClock:
    """A monotonically increasing virtual clock measured in microseconds.

    The clock supports two styles of use:

    * ``advance(us)`` — charge a cost: "this operation took *us*
      microseconds of virtual time".
    * ``advance_to(t)`` — jump to an absolute point, used by workload
      generators that pace requests ("the next request arrives at t").

    Watchers registered with :meth:`on_advance` observe every forward
    movement; the failure detector and time-series metrics use this to
    sample state without polluting the mechanism code.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ClockError("clock cannot start before time zero")
        self._now_us: float = float(start_us)
        self._watchers: List[Callable[[float, float], None]] = []

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / 1_000.0

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1_000_000.0

    def advance(self, delta_us: float) -> float:
        """Move time forward by ``delta_us`` microseconds.

        Returns the new time.  A zero delta is allowed (free operations)
        but a negative delta raises :class:`ClockError`.
        """
        if delta_us < 0:
            raise ClockError(f"cannot advance clock by negative {delta_us}")
        if delta_us == 0:
            return self._now_us
        old = self._now_us
        self._now_us = old + delta_us
        for watcher in self._watchers:
            watcher(old, self._now_us)
        return self._now_us

    def advance_to(self, t_us: float) -> float:
        """Jump forward to absolute time ``t_us``.

        Jumping to the current time (or earlier) is a no-op so that
        workload generators can schedule "now or later" uniformly.
        """
        if t_us <= self._now_us:
            return self._now_us
        return self.advance(t_us - self._now_us)

    def seek(self, t_us: float) -> float:
        """Set the clock to absolute ``t_us`` — the parallel-recovery
        scheduler's track primitive.

        Overlapping recovery tracks each start at their own ready time:
        the scheduler seeks back to that time before running a track,
        and seeks forward to the max track end (the "max-merge") once
        every track has run, so concurrent reboots cost the critical
        path instead of the sum.  Seeking is only legal on an unwatched
        clock: a watcher's view of time must stay monotonic, which is
        why the planner refuses to engage (and the serial sweep runs)
        whenever watchers are registered.
        """
        if self._watchers:
            raise ClockError("cannot seek a watched clock")
        if t_us < 0:
            raise ClockError("cannot seek before time zero")
        self._now_us = float(t_us)
        return self._now_us

    def on_advance(self, watcher: Callable[[float, float], None]) -> None:
        """Register ``watcher(old_us, new_us)`` called after each advance."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Callable[[float, float], None]) -> None:
        """Unregister a previously registered watcher (no-op if absent)."""
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass


class Stopwatch:
    """Measures a span of virtual time against a :class:`VirtualClock`."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def start(self) -> None:
        self._start = self._clock.now_us

    def stop(self) -> float:
        if self._start is None:
            raise ClockError("stopwatch was never started")
        self._elapsed = self._clock.now_us - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed_us(self) -> float:
        if self._start is not None:
            return self._clock.now_us - self._start
        return self._elapsed


class Timer:
    """A deadline on the virtual clock.

    Used by the hang detector (processing-time threshold) and by
    workload pacing.  ``expired`` is evaluated lazily against the clock,
    so timers are free until checked.
    """

    def __init__(self, clock: VirtualClock, deadline_us: float) -> None:
        self._clock = clock
        self.deadline_us = deadline_us

    @classmethod
    def after(cls, clock: VirtualClock, delta_us: float) -> "Timer":
        return cls(clock, clock.now_us + delta_us)

    @property
    def expired(self) -> bool:
        return self._clock.now_us >= self.deadline_us

    @property
    def remaining_us(self) -> float:
        return max(0.0, self.deadline_us - self._clock.now_us)


def us_from_ms(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * 1_000.0


def us_from_s(s: float) -> float:
    """Convert seconds to microseconds."""
    return s * 1_000_000.0


def format_us(us: float) -> str:
    """Human-readable rendering of a microsecond quantity."""
    if us < 1_000.0:
        return f"{us:.2f} us"
    if us < 1_000_000.0:
        return f"{us / 1_000.0:.2f} ms"
    return f"{us / 1_000_000.0:.3f} s"
