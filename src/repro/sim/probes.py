"""Injection-site probes: deterministic hooks at recovery boundaries.

The crucible explorer (``repro.crucible``) needs to plant faults *at*
the runtime's interesting boundaries — a message crossing the domain,
a checkpoint being taken or restored, one replayed log entry, one
escalation-ladder rung — not merely between top-level syscalls.  The
hot paths cannot afford a subscriber list or an event object per hit,
so the hook is the cheapest thing that works:

* ``Simulation.probes`` is ``None`` by default; every instrumented site
  guards with ``if sim.probes is not None`` (one attribute test).
* When a :class:`SiteProbes` is attached, each site hit increments a
  per-site counter and fires any callback armed for exactly that hit.

Arming is *relative* ("the 3rd ``msg_push`` from now"), which is what a
generated scenario schedule can express without knowing absolute
counts.  Everything is plain counting — no randomness, no wall clock —
so a replay of the same schedule hits the same sites at the same
counts, whatever the host or worker count.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: the instrumented sites, in documentation order
SITES: Tuple[str, ...] = (
    "msg_push",      # MessageDomain.vo_push_msgs (request or reply)
    "msg_pull",      # MessageDomain.vo_pull_msgs
    "checkpoint",    # SnapshotStore.take / .restore
    "replay_step",   # EncapsulatedRestorer.replay, per log entry
    "ladder_rung",   # RecoverySupervisor, per attempted rung plan
)

#: callback(site, hit_index, detail) — performs the armed action
ProbeCallback = Callable[[str, int, Dict[str, Any]], None]


class SiteProbes:
    """Per-site hit counters plus callbacks armed for specific hits."""

    def __init__(self) -> None:
        #: lifetime hits per site (coverage accounting)
        self.counts: Dict[str, int] = {}
        #: site -> absolute hit index -> callbacks
        self._armed: Dict[str, Dict[int, List[ProbeCallback]]] = {}

    def arm(self, site: str, hits_from_now: int,
            callback: ProbeCallback) -> None:
        """Fire ``callback`` on the ``hits_from_now``-th *subsequent*
        hit of ``site`` (0 = the very next one)."""
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}; "
                             f"valid sites: {', '.join(SITES)}")
        if hits_from_now < 0:
            raise ValueError("hits_from_now must be >= 0")
        target = self.counts.get(site, 0) + hits_from_now
        self._armed.setdefault(site, {}).setdefault(target, []) \
            .append(callback)

    def fire(self, site: str, **detail: Any) -> None:
        """One site hit: count it and run callbacks armed for it."""
        index = self.counts.get(site, 0)
        self.counts[site] = index + 1
        armed = self._armed.get(site)
        if not armed:
            return
        callbacks = armed.pop(index, None)
        if callbacks:
            for callback in callbacks:
                callback(site, index, detail)

    def pending(self) -> int:
        """Armed callbacks that have not fired (yet)."""
        return sum(len(cbs) for hits in self._armed.values()
                   for cbs in hits.values())
