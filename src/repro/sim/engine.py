"""Simulation context: the shared clock, cost model, RNG and trace.

A :class:`Simulation` is the root object every other subsystem hangs off
of.  It is deliberately thin — the interesting machinery lives in the
memory, unikernel and VampOS packages — but it gives every run a single
source of virtual time and determinism, and a small deferred-event queue
used by workload generators and the failure detector.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from .clock import VirtualClock
from .costs import CostLedger, CostModel, DEFAULT_COSTS
from .rng import DeterministicRNG
from .trace import Trace
from ..obs import state as obs_state


@dataclass(order=True)
class _ScheduledEvent:
    t_us: float
    seq: int
    callback: Callable[[], None] = None  # type: ignore[assignment]
    cancelled: bool = False

    def __post_init__(self) -> None:
        # Only (t_us, seq) participate in ordering; dataclass(order=True)
        # would otherwise compare callbacks on ties.
        object.__setattr__(self, "sort_index", (self.t_us, self.seq))


class EventHandle:
    """Cancellation handle for a deferred event."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def t_us(self) -> float:
        return self._event.t_us


class Simulation:
    """Root container for one deterministic simulation run."""

    def __init__(self, seed: int = 0,
                 costs: Optional[CostModel] = None,
                 trace: Optional[Trace] = None) -> None:
        self.clock = VirtualClock()
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.rng = DeterministicRNG(seed)
        self.trace = trace if trace is not None else Trace()
        self.ledger = CostLedger()
        #: flight recorder, or None when observability is off — hot
        #: paths guard on ``sim.obs is not None`` and nothing else
        self.obs = obs_state.maybe_attach(self)
        if self.obs is not None and self.trace.on_drop is None:
            # Ring-buffer evictions count into the recording (the hook
            # fires only on the rare evicting emit).
            self.trace.on_drop = self.obs.on_trace_drop
        #: injection-site probes (see :mod:`repro.sim.probes`), or None;
        #: attached by the crucible explorer, never in production runs
        self.probes = None
        self._queue: List[Tuple[Tuple[float, int], _ScheduledEvent]] = []
        self._seq = itertools.count()

    # --- cost charging ------------------------------------------------------

    def charge(self, category: str, amount_us: float) -> None:
        """Advance the clock by ``amount_us`` and record it in the ledger.

        This is the hottest function in the simulator (tens of charges
        per syscall), so the clock advance is inlined when no watchers
        are registered — ``now + amount`` is the same float either way.
        """
        if amount_us <= 0:
            if amount_us == 0:
                self.ledger.charge(category, 0.0)
                if self.obs is not None:
                    self.obs.on_charge(category, 0.0)
            return
        clock = self.clock
        if clock._watchers:
            clock.advance(amount_us)
        else:
            clock._now_us += amount_us
        # Inlined CostLedger.charge (same seeding, bit-identical totals):
        # this path runs tens of times per syscall.
        ledger = self.ledger
        ledger.elapsed_us += amount_us
        try:
            ledger.totals[category] += amount_us
        except KeyError:
            ledger.totals[category] = 0.0 + amount_us
            ledger.counts[category] = 1
        else:
            ledger.counts[category] += 1
        if self.obs is not None:
            self.obs.on_charge(category, amount_us)

    def emit(self, category: str, name: str, **detail: Any) -> None:
        """Emit a trace event stamped with the current virtual time."""
        self.trace.emit(self.clock.now_us, category, name, **detail)

    # --- deferred events ------------------------------------------------------

    def call_at(self, t_us: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run when time reaches ``t_us``."""
        event = _ScheduledEvent(t_us=max(t_us, self.clock.now_us),
                                seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, ((event.t_us, event.seq), event))
        return EventHandle(event)

    def call_after(self, delta_us: float,
                   callback: Callable[[], None]) -> EventHandle:
        return self.call_at(self.clock.now_us + delta_us, callback)

    def pending_events(self) -> int:
        return sum(1 for _, e in self._queue if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        while self._queue and self._queue[0][1].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][1].t_us

    def run_due_events(self) -> int:
        """Fire every event whose time has arrived; returns count fired."""
        fired = 0
        while self._queue:
            key, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.t_us > self.clock.now_us:
                break
            heapq.heappop(self._queue)
            event.callback()
            fired += 1
        return fired

    def run_until(self, t_us: float) -> int:
        """Advance time to ``t_us``, firing deferred events in order.

        Each event fires with the clock set to its own timestamp, so
        callbacks that charge further costs interleave correctly.
        """
        fired = 0
        while True:
            nxt = self.next_event_time()
            if nxt is None or nxt > t_us:
                break
            self.clock.advance_to(nxt)
            fired += self.run_due_events()
        self.clock.advance_to(t_us)
        return fired

    def drain_events(self, limit: int = 1_000_000) -> int:
        """Fire all remaining events in timestamp order."""
        fired = 0
        while fired < limit:
            nxt = self.next_event_time()
            if nxt is None:
                break
            self.clock.advance_to(nxt)
            fired += self.run_due_events()
        return fired
